package main

import (
	"context"
	"fmt"
	"io"

	"securadio/internal/adversary"
	"securadio/internal/core"
	"securadio/internal/graph"
	"securadio/internal/metrics"
	"securadio/internal/msgopt"
	"securadio/internal/radio"
)

// starWorkload builds a hub-and-spoke AME set: node 0 sends to degree
// destinations, plus one unrelated pair to keep proposals full.
func starWorkload(degree int) []graph.Edge {
	var pairs []graph.Edge
	for dst := 1; dst <= degree; dst++ {
		pairs = append(pairs, graph.Edge{Src: 0, Dst: dst})
	}
	return append(pairs, graph.Edge{Src: degree + 1, Dst: degree + 2})
}

// expMsgOpt regenerates the Section 5.6 comparison: plain f-AME ships a
// node's whole value vector (out-degree distinct values per message);
// the optimized protocol ships one value (gossip phase) or one signature
// (exchange phase) per message, at the same asymptotic round cost, and
// the reconstruction-phase chain count stays polynomial even under
// candidate-flooding spoofers.
func expMsgOpt(ctx context.Context, w io.Writer, cfg config) ([]*metrics.Table, error) {
	degrees := []int{4, 8, 12}
	if cfg.Quick {
		degrees = []int{4, 8}
	}
	p := core.Params{N: 20, C: 2, T: 1}

	tb := metrics.NewTable(
		"message size: plain f-AME vs Section 5.6 optimization (hub out-degree sweep)",
		"out-degree", "plain max values/msg", "compact max values/msg", "plain rounds", "compact rounds", "chains")
	for _, d := range degrees {
		pairs := starWorkload(d)

		// Plain run, instrumented by the shared size model.
		values := make(map[graph.Edge]radio.Message, len(pairs))
		strValues := make(map[graph.Edge]string, len(pairs))
		for _, e := range pairs {
			s := fmt.Sprintf("m%v", e)
			values[e] = s
			strValues[e] = s
		}
		plainMax := 0
		procs := make([]radio.Process, p.N)
		results := make([]core.Result, p.N)
		for i := 0; i < p.N; i++ {
			my := make(map[int]radio.Message)
			for _, e := range pairs {
				if e.Src == i {
					my[e.Dst] = values[e]
				}
			}
			procs[i] = core.Proc(p, pairs, my, &results[i])
		}
		rcfg := radio.Config{N: p.N, C: p.C, T: p.T, Seed: cfg.Seed + int64(d), Trace: func(o radio.RoundObservation) {
			for _, m := range o.Delivered {
				if m == nil {
					continue
				}
				if c := msgopt.MessageValueCount(m); c > plainMax {
					plainMax = c
				}
			}
		}}
		plainRes, err := radio.RunContext(ctx, rcfg, procs)
		if err != nil {
			return nil, err
		}

		// Optimized run.
		mp := msgopt.Params{Fame: p}
		mout, err := msgopt.ExchangeContext(ctx, mp, pairs, strValues, nil, cfg.Seed+int64(d))
		if err != nil {
			return nil, err
		}
		tb.AddRow(d, plainMax, mout.MaxValuesPerMessage, plainRes.Rounds, mout.Rounds, mout.MaxChains)
		if plainMax != d {
			return nil, fmt.Errorf("plain max values = %d, want out-degree %d", plainMax, d)
		}
		if mout.MaxValuesPerMessage > 1 {
			return nil, fmt.Errorf("optimized protocol shipped %d values in one message", mout.MaxValuesPerMessage)
		}
	}

	// Chain growth under a candidate-flooding spoofer: the paper bounds
	// surviving chains by the candidate count O(t^2 log n).
	pairs := starWorkload(6)
	strValues := make(map[graph.Edge]string, len(pairs))
	for _, e := range pairs {
		strValues[e] = fmt.Sprintf("m%v", e)
	}
	mp := msgopt.Params{Fame: p}
	forge := func(round int) radio.Message {
		return forgedEpochCandidate(round)
	}
	out, err := msgopt.ExchangeContext(ctx, mp, pairs, strValues, adversary.NewRandomSpoofer(p.T, p.C, cfg.Seed+99, forge), cfg.Seed+99)
	if err != nil {
		return nil, err
	}
	poisoned := 0
	for i := range out.PerNode {
		for e, v := range out.PerNode[i].Delivered {
			if string(v) != strValues[e] {
				poisoned++
			}
		}
	}
	tb2 := metrics.NewTable(
		"reconstruction under candidate flooding (spoofer injects every round)",
		"max chains", "bound O(t^2 log n) candidates", "poisoned deliveries")
	tb2.AddRow(out.MaxChains, mp.EpochRounds(), poisoned)
	if poisoned != 0 {
		return nil, fmt.Errorf("optimization accepted %d poisoned values", poisoned)
	}
	return []*metrics.Table{tb, tb2}, nil
}

// forgedEpochCandidate fabricates a self-consistent single-level chain
// candidate attributed to node 0, exercising the reconstruction phase's
// worst case.
func forgedEpochCandidate(round int) radio.Message {
	return msgopt.ForgeCandidate(0, round%2, fmt.Sprintf("POISON-%d", round%5))
}
