package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"securadio/internal/game"
	"securadio/internal/graph"
	"securadio/internal/metrics"
	"securadio/internal/radio"
)

// expGreedy regenerates Theorem 4: the greedy-removal strategy finishes
// the starred-edge removal game in O(|E|) moves — concretely within
// |E| + #sources — for every referee, ending with vertex cover <= t.
func expGreedy(ctx context.Context, w io.Writer, cfg config) ([]*metrics.Table, error) {
	sweepE := []int{16, 32, 64, 128}
	if cfg.Quick {
		sweepE = []int{16, 32}
	}
	const n, t = 32, 2
	refs := []struct {
		name string
		ref  game.Referee
	}{
		{"stall (worst case)", game.StallReferee{}},
		{"first item", game.FirstItemReferee{}},
		{"jammer (grants k-t)", game.JammerReferee{T: t}},
		{"all items (no jam)", game.AllItemsReferee{}},
	}

	// The removal game never enters the radio layer, so honor ctx
	// explicitly at each sweep point — an interrupt must abort this
	// experiment like any other.
	checkCtx := func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: greedy-removal sweep: %v", radio.ErrCanceled, err)
		}
		return nil
	}

	var tables []*metrics.Table
	for _, r := range refs {
		if err := checkCtx(); err != nil {
			return nil, err
		}
		tb := metrics.NewTable(
			fmt.Sprintf("greedy-removal moves vs |E|  (referee: %s, n=%d, t=%d)", r.name, n, t),
			"|E|", "moves", "bound |E|+sources", "final VC", "VC <= t")
		var samples []metrics.Sample
		for _, k := range sweepE {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
			edges := graph.RandomPairs(n, k, rng.Intn)
			g, err := graph.FromEdges(n, edges)
			if err != nil {
				return nil, err
			}
			st := game.NewState(g, t)
			bound := len(edges) + len(g.Sources())
			moves, err := game.Play(st, t+1, t+1, r.ref)
			if err != nil {
				return nil, err
			}
			vc := st.G.MinVertexCover()
			tb.AddRow(k, moves, bound, vc, vc <= t)
			if moves > bound {
				return nil, fmt.Errorf("referee %s exceeded the Theorem 4 bound: %d > %d", r.name, moves, bound)
			}
			samples = append(samples, metrics.Sample{X: float64(k), Y: float64(moves)})
		}
		tb.AddRow("slope", fmt.Sprintf("%.2f", metrics.LogLogSlope(samples)), "(linear ~ 1)", "", "")
		tables = append(tables, tb)
	}

	// Wide proposals (the C >= 2t game): moves shrink by ~t.
	tb := metrics.NewTable(
		fmt.Sprintf("wide proposals: moves with k=t+1 vs k=2t items per move (jammer referee, n=%d, t=%d)", n, t),
		"|E|", "moves k=t+1", "moves k=2t", "speedup")
	for _, k := range sweepE {
		if err := checkCtx(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
		edges := graph.RandomPairs(n, k, rng.Intn)
		g1, err := graph.FromEdges(n, edges)
		if err != nil {
			return nil, err
		}
		narrow, err := game.Play(game.NewState(g1, t), t+1, t+1, game.JammerReferee{T: t})
		if err != nil {
			return nil, err
		}
		g2, err := graph.FromEdges(n, edges)
		if err != nil {
			return nil, err
		}
		wide, err := game.Play(game.NewState(g2, t), t+1, 2*t, game.JammerReferee{T: t})
		if err != nil {
			return nil, err
		}
		tb.AddRow(k, narrow, wide, float64(narrow)/float64(wide))
	}
	tables = append(tables, tb)
	return tables, nil
}
