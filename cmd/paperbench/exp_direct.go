package main

import (
	"context"
	"fmt"
	"io"

	"securadio/internal/adversary"
	"securadio/internal/core"
	"securadio/internal/graph"
	"securadio/internal/metrics"
	"securadio/internal/radio"
)

// trianglePairs builds the Section 5 attack workload: the three directed
// edges of each of t disjoint triples, plus cross pairs that keep the
// protocol busy.
func trianglePairs(t int, crossPairs int) []graph.Edge {
	var pairs []graph.Edge
	for _, tr := range adversary.Triples(t) {
		pairs = append(pairs,
			graph.Edge{Src: tr[0], Dst: tr[1]},
			graph.Edge{Src: tr[1], Dst: tr[2]},
			graph.Edge{Src: tr[2], Dst: tr[0]})
	}
	base := 3 * t
	for i := 0; i < crossPairs; i++ {
		pairs = append(pairs, graph.Edge{Src: base + 2*i, Dst: base + 2*i + 1})
	}
	return pairs
}

// expDirect2T regenerates the Section 5 separation: under the
// triangle-isolation attack, direct (surrogate-free) exchange ends with a
// disruption cover of exactly 2t, while the full f-AME stays within t.
func expDirect2T(ctx context.Context, w io.Writer, cfg config) ([]*metrics.Table, error) {
	ts := []int{1, 2, 3}
	if cfg.Quick {
		ts = []int{1, 2}
	}
	tb := metrics.NewTable(
		"triangle attack: disruption cover, direct vs surrogate f-AME",
		"t", "n", "C", "mode", "cover", "bound", "within bound")
	for _, t := range ts {
		p := core.Params{C: t + 1, T: t, Regime: core.RegimeBase}
		p.N = p.MinNodes() + 3*t + 8
		pairs := trianglePairs(t, 2)
		values := make(map[graph.Edge]radio.Message, len(pairs))
		for _, e := range pairs {
			values[e] = fmt.Sprintf("m%v", e)
		}

		for _, mode := range []core.Mode{core.ModeDirect, core.ModeSurrogate} {
			pm := p
			pm.Mode = mode
			adv := adversary.NewTriangle(t, t+1, adversary.Triples(t))
			out, err := core.ExchangeContext(ctx, pm, pairs, values, adv, cfg.Seed+int64(t))
			if err != nil {
				return nil, err
			}
			name, bound := "direct", 2*t
			if mode == core.ModeSurrogate {
				name, bound = "surrogate", t
			}
			tb.AddRow(t, pm.N, pm.C, name, out.CoverSize, bound, out.CoverSize <= bound)
			if out.CoverSize > bound {
				return nil, fmt.Errorf("t=%d mode=%s cover %d exceeds %d", t, name, out.CoverSize, bound)
			}
			if mode == core.ModeDirect && out.CoverSize != 2*t {
				return nil, fmt.Errorf("t=%d direct cover = %d, attack should force exactly 2t", t, out.CoverSize)
			}
		}
	}
	return []*metrics.Table{tb}, nil
}

// expByzantine regenerates the Section 8 extension: the direct variant
// ("surrogates eliminated, every rumor received directly from its
// source") stays within 2t-disruptability against the worst-case jammer
// on dense workloads.
func expByzantine(ctx context.Context, w io.Writer, cfg config) ([]*metrics.Table, error) {
	ts := []int{1, 2}
	sizes := []int{6, 8}
	if cfg.Quick {
		sizes = []int{6}
	}
	tb := metrics.NewTable(
		"Byzantine/direct variant under the worst-case jammer (complete workloads)",
		"t", "n", "|E|", "cover", "bound 2t", "within", "rounds")
	for _, t := range ts {
		for _, m := range sizes {
			p := core.Params{C: t + 1, T: t, Mode: core.ModeDirect, Regime: core.RegimeBase}
			p.N = p.MinNodes() + m + 8
			pairs := graph.Complete(m)
			values := make(map[graph.Edge]radio.Message, len(pairs))
			for _, e := range pairs {
				values[e] = fmt.Sprintf("m%v", e)
			}
			adv := &adversary.GreedyJammer{T: t, C: t + 1}
			out, err := core.ExchangeContext(ctx, p, pairs, values, adv, cfg.Seed+int64(10*t+m))
			if err != nil {
				return nil, err
			}
			tb.AddRow(t, p.N, len(pairs), out.CoverSize, 2*t, out.CoverSize <= 2*t, out.Rounds)
			if out.CoverSize > 2*t {
				return nil, fmt.Errorf("t=%d cover %d exceeds 2t", t, out.CoverSize)
			}
		}
	}
	return []*metrics.Table{tb}, nil
}
