package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"securadio/internal/adversary"
	"securadio/internal/core"
	"securadio/internal/feedback"
	"securadio/internal/graph"
	"securadio/internal/metrics"
	"securadio/internal/radio"
)

// log2 of n, floored at 1 — the model's log factor.
func log2(n int) float64 {
	l := math.Log2(float64(n))
	if l < 1 {
		return 1
	}
	return l
}

// famePoint runs one f-AME execution against the worst-case jammer and
// returns (rounds, gameMoves).
func famePoint(ctx context.Context, p core.Params, numPairs int, seed int64) (int, int, error) {
	rng := rand.New(rand.NewSource(seed))
	span := 12
	if span > p.N {
		span = p.N
	}
	pairs := graph.RandomPairs(span, numPairs, rng.Intn)
	values := make(map[graph.Edge]radio.Message, len(pairs))
	for _, e := range pairs {
		values[e] = fmt.Sprintf("m%v", e)
	}
	adv := &adversary.GreedyJammer{T: p.T, C: p.C}
	out, err := core.ExchangeContext(ctx, p, pairs, values, adv, seed)
	if err != nil {
		return 0, 0, err
	}
	if out.CoverSize > p.T {
		return 0, 0, fmt.Errorf("cover %d exceeds t=%d", out.CoverSize, p.T)
	}
	return out.Rounds, out.GameRounds, nil
}

// fig3Params builds f-AME parameters for one Figure 3 row.
func fig3Params(regime core.Regime, t int) core.Params {
	var c int
	switch regime {
	case core.Regime2T:
		c = 2 * t
	case core.Regime2T2:
		c = 2 * t * t
	default:
		c = t + 1
	}
	p := core.Params{C: c, T: t, Regime: regime}
	p.N = p.MinNodes() + 4
	return p
}

// expFig3Row is shared by E1-E3: sweep |E| at fixed t, sweep t at fixed
// |E|, and report the per-invocation feedback cost. model(t, n) is the
// regime's predicted rounds per unit |E|.
func expFig3Row(ctx context.Context, w io.Writer, cfg config, regime core.Regime, ts []int, model func(t, n int) float64, modelName string) ([]*metrics.Table, error) {
	sweepE := []int{8, 16, 32, 64}
	if cfg.Quick {
		sweepE = []int{8, 16}
		if len(ts) > 2 {
			ts = ts[:2]
		}
	}

	// Table 1: rounds vs |E| at the smallest t.
	t0 := ts[0]
	p0 := fig3Params(regime, t0)
	tb1 := metrics.NewTable(
		fmt.Sprintf("f-AME rounds vs |E|  (regime %v, t=%d, n=%d, C=%d; worst-case jammer)", regime, t0, p0.N, p0.C),
		"|E|", "rounds", "game moves", "model "+modelName, "rounds/model")
	var samples []metrics.Sample
	for _, k := range sweepE {
		rounds, moves, err := famePoint(ctx, p0, k, cfg.Seed+int64(k))
		if err != nil {
			return nil, err
		}
		m := float64(k) * model(t0, p0.N)
		tb1.AddRow(k, rounds, moves, m, float64(rounds)/m)
		samples = append(samples, metrics.Sample{X: float64(k), Y: float64(rounds)})
	}
	slope := metrics.LogLogSlope(samples)
	tb1.AddRow("slope", fmt.Sprintf("%.2f", slope), "(linear in |E| ~ 1)", "", "")

	// Round-breakdown ablation: feedback dominates each move (the paper's
	// complexity is #moves x feedback cost; the transmission phase is a
	// single round per move).
	breakRounds, breakMoves, err := famePoint(ctx, p0, sweepE[len(sweepE)-1], cfg.Seed)
	if err != nil {
		return nil, err
	}
	tbB := metrics.NewTable(
		fmt.Sprintf("round breakdown at |E|=%d (regime %v, t=%d)", sweepE[len(sweepE)-1], regime, t0),
		"phase", "rounds", "share")
	tbB.AddRow("message transmission", breakMoves, float64(breakMoves)/float64(breakRounds))
	tbB.AddRow("feedback", breakRounds-breakMoves, float64(breakRounds-breakMoves)/float64(breakRounds))

	// Table 2: rounds vs t at fixed |E|.
	const fixedE = 16
	tb2 := metrics.NewTable(
		fmt.Sprintf("f-AME rounds vs t  (regime %v, |E|=%d; n at the model bound)", regime, fixedE),
		"t", "n", "C", "rounds", "model "+modelName, "rounds/model")
	for _, t := range ts {
		p := fig3Params(regime, t)
		rounds, _, err := famePoint(ctx, p, fixedE, cfg.Seed+int64(100*t))
		if err != nil {
			return nil, err
		}
		m := fixedE * model(t, p.N)
		tb2.AddRow(t, p.N, p.C, rounds, m, float64(rounds)/m)
	}

	// Table 3: feedback cost per invocation (the middle column of Fig 3).
	tb3 := metrics.NewTable(
		fmt.Sprintf("communication-feedback cost per invocation (regime %v)", regime),
		"t", "n", "C", "rounds/invocation")
	for _, t := range ts {
		p := fig3Params(regime, t)
		reps := feedback.Reps(p.N, p.C, p.T, p.Kappa)
		var rounds int
		if regime == core.Regime2T2 {
			rounds = feedback.ParallelRounds(p.LiveChannels(), feedback.MergeReps(p.N, p.Kappa), reps)
		} else {
			rounds = feedback.Rounds(p.LiveChannels(), reps)
		}
		tb3.AddRow(t, p.N, p.C, rounds)
	}
	return []*metrics.Table{tb1, tbB, tb2, tb3}, nil
}

func expFig3Base(ctx context.Context, w io.Writer, cfg config) ([]*metrics.Table, error) {
	model := func(t, n int) float64 {
		return float64((t+1)*(t+1)) * log2(n) // t^2 log n per edge
	}
	tables, err := expFig3Row(ctx, w, cfg, core.RegimeBase, []int{1, 2, 3}, model, "|E|*t^2*log n")
	if err != nil {
		return nil, err
	}

	// Model-compliance check: the omniscient jammer used above is a
	// convenience; a ScheduleAwareJammer that stays strictly inside the
	// paper's model (replicating the deterministic schedule from public
	// information) must slow the protocol just as much.
	tb := metrics.NewTable(
		"worst case is model-compliant: omniscient vs schedule-replica jammer (t=1, n=22)",
		"|E|", "rounds omniscient", "rounds replica", "cover omniscient", "cover replica")
	sweep := []int{8, 16, 32}
	if cfg.Quick {
		sweep = []int{8}
	}
	p := fig3Params(core.RegimeBase, 1)
	for _, k := range sweep {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
		pairs := graph.RandomPairs(12, k, rng.Intn)
		values := make(map[graph.Edge]radio.Message, len(pairs))
		for _, e := range pairs {
			values[e] = "m"
		}
		omni, err := core.ExchangeContext(ctx, p, pairs, values, &adversary.GreedyJammer{T: p.T, C: p.C}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rj, err := core.NewScheduleAwareJammer(p, pairs)
		if err != nil {
			return nil, err
		}
		repl, err := core.ExchangeContext(ctx, p, pairs, values, rj, cfg.Seed)
		if err != nil {
			return nil, err
		}
		tb.AddRow(k, omni.Rounds, repl.Rounds, omni.CoverSize, repl.CoverSize)
		if repl.CoverSize > p.T {
			return nil, fmt.Errorf("replica jammer broke the t bound")
		}
	}
	return append(tables, tb), nil
}

func expFig32T(ctx context.Context, w io.Writer, cfg config) ([]*metrics.Table, error) {
	model := func(t, n int) float64 {
		return log2(n) // log n per edge
	}
	return expFig3Row(ctx, w, cfg, core.Regime2T, []int{1, 2, 3}, model, "|E|*log n")
}

func expFig32T2(ctx context.Context, w io.Writer, cfg config) ([]*metrics.Table, error) {
	model := func(t, n int) float64 {
		return log2(n) * log2(n) / float64(t) // log^2 n / t per edge
	}
	return expFig3Row(ctx, w, cfg, core.Regime2T2, []int{2, 3}, model, "|E|*log^2 n/t")
}
