package main

import (
	"context"
	"fmt"
	"io"

	"securadio/internal/adversary"
	"securadio/internal/metrics"
	"securadio/internal/radio"
	"securadio/internal/secure"
	"securadio/internal/wcrypto"
)

// expLongLived regenerates the Section 7 costs and guarantees: one
// emulated round of the long-lived secure channel costs Theta(t log n)
// real rounds; deliveries survive model-compliant jamming; injections and
// replays are rejected.
func expLongLived(ctx context.Context, w io.Writer, cfg config) ([]*metrics.Table, error) {
	// Table 1: the slot cost Theta(t log n).
	tb1 := metrics.NewTable(
		"emulated-round cost (real rounds per emulated round)",
		"n", "t", "slot rounds", "model (t+1)*log n", "slot/model")
	for _, pt := range []struct{ n, t int }{{16, 1}, {64, 1}, {256, 1}, {64, 2}, {64, 3}} {
		p := secure.Params{N: pt.n, C: pt.t + 1, T: pt.t}
		model := float64(pt.t+1) * log2(pt.n)
		tb1.AddRow(pt.n, pt.t, p.SlotRounds(), model, float64(p.SlotRounds())/model)
	}

	// Table 2: delivery and security under fire.
	emRounds := 30
	if cfg.Quick {
		emRounds = 10
	}
	const n, c, t = 12, 3, 2
	key := wcrypto.KeyFromBytes("paperbench", []byte("group"))
	p := secure.Params{N: n, C: c, T: t}

	scenario := func(adv radio.Adversary) (delivered, expected, rejected int, err error) {
		received := make([][]int, n) // per node: emRounds delivered flags
		procs := make([]radio.Process, n)
		for i := 0; i < n; i++ {
			i := i
			procs[i] = func(e radio.Env) {
				ch, aerr := secure.Attach(e, p, key)
				if aerr != nil {
					return
				}
				for em := 0; em < emRounds; em++ {
					sender := em % n
					var body []byte
					if i == sender {
						body = []byte(fmt.Sprintf("payload-%d", em))
					}
					got := ch.Step(body)
					if i == sender {
						continue
					}
					ok := 0
					for _, r := range got {
						if r.Sender == sender && string(r.Body) == fmt.Sprintf("payload-%d", em) {
							ok = 1
						}
					}
					received[i] = append(received[i], ok)
				}
			}
		}
		rcfg := radio.Config{N: n, C: c, T: t, Seed: cfg.Seed + 5, Adversary: adv}
		res, rerr := radio.RunContext(ctx, rcfg, procs)
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		for i := range received {
			for _, ok := range received[i] {
				expected++
				delivered += ok
			}
		}
		// Spoofed frames that physically reached a radio but were rejected
		// by authentication.
		rejected = res.SpoofDeliveries
		return delivered, expected, rejected, nil
	}

	tb2 := metrics.NewTable(
		fmt.Sprintf("long-lived channel under fire (n=%d, C=%d, t=%d, %d emulated rounds)", n, c, t, emRounds),
		"adversary", "delivered", "expected", "rate", "spoofs on air (all rejected)")
	advs := []struct {
		name string
		adv  radio.Adversary
	}{
		{"none", nil},
		{"random jammer", adversary.NewRandomJammer(t, c, cfg.Seed+9)},
		{"sweep jammer", &adversary.SweepJammer{T: t, C: c}},
		{"spoofer", adversary.NewRandomSpoofer(t, c, cfg.Seed+10, func(round int) radio.Message {
			return []byte("forged-frame")
		})},
		{"replayer", adversary.NewReplaySpoofer(t, c, cfg.Seed+11)},
	}
	for _, a := range advs {
		delivered, expected, rejected, err := scenario(a.adv)
		if err != nil {
			return nil, err
		}
		rate := float64(delivered) / float64(expected)
		tb2.AddRow(a.name, delivered, expected, rate, rejected)
		if rate < 0.99 {
			return nil, fmt.Errorf("delivery rate %.3f under %s below whp expectation", rate, a.name)
		}
	}
	return []*metrics.Table{tb1, tb2}, nil
}
