// Command paperbench regenerates every quantitative artifact of the paper
// on the simulated radio network: the three rows of Figure 3 (f-AME's
// complexity across channel regimes), the Theorem 2 lower-bound
// demonstration, the Section 5 2t-attack on direct exchange, Theorem 4's
// greedy-game bound, Lemma 5's feedback reliability, the Section 6 group
// key cost, the Section 7 long-lived channel cost, the oblivious-gossip
// baseline comparison, and the Section 5.6 message-size optimization.
//
// Run everything:
//
//	paperbench -exp all
//
// Run one experiment, with CSV output:
//
//	paperbench -exp fig3-base -csv
//
// The -quick flag shrinks the sweeps for fast smoke runs; a full run
// records the paper-vs-measured comparison for every experiment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"securadio/internal/metrics"
	"securadio/internal/radio"
)

// config carries the harness-wide knobs into each experiment.
type config struct {
	Quick bool
	Seed  int64
	CSV   bool
}

// experiment is one regenerable artifact.
type experiment struct {
	id    string
	title string
	run   func(ctx context.Context, w io.Writer, cfg config) ([]*metrics.Table, error)
}

func registry() []experiment {
	return []experiment{
		{"fig3-base", "E1: Figure 3 row C=t+1 — f-AME O(|E| t^2 log n)", expFig3Base},
		{"fig3-2t", "E2: Figure 3 row C>=2t — f-AME O(|E| log n)", expFig32T},
		{"fig3-2t2", "E3: Figure 3 row C>=2t^2 — f-AME O(|E| log^2 n / t)", expFig32T2},
		{"thm2", "E4: Theorem 2 — no protocol beats t-disruptability", expThm2},
		{"direct-2t", "E5: Section 5 — triangle attack makes direct exchange 2t-disruptable", expDirect2T},
		{"greedy", "E6: Theorem 4 — greedy removal finishes in O(|E|) moves", expGreedy},
		{"feedback", "E7: Lemma 5 — feedback agreement vs repetition multiplier", expFeedback},
		{"groupkey", "E8: Section 6 — group key in Theta(n t^3 log n) rounds", expGroupKey},
		{"longlived", "E9: Section 7 — emulated round costs Theta(t log n)", expLongLived},
		{"gossip", "E10: Section 2 — oblivious gossip baseline vs f-AME", expGossip},
		{"msgopt", "E11: Section 5.6 — constant-size protocol messages", expMsgOpt},
		{"byz", "E12: Section 8 ext. — Byzantine/direct variant is 2t-disruptable", expByzantine},
		{"cleanup", "E13: Section 8 open q.3 — best-effort cleanup extension", expCleanup},
	}
}

func main() {
	// SIGINT/SIGTERM cancel the context: the running experiment aborts at
	// its next radio round boundary, everything already printed stands as
	// partial results, and the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		exps  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		seed  = flag.Int64("seed", 1, "master seed")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	reg := registry()
	if *list {
		for _, e := range reg {
			fmt.Printf("%-10s %s\n", e.id, e.title)
		}
		return nil
	}

	want := map[string]bool{}
	all := *exps == "all"
	for _, id := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(id)] = true
	}

	cfg := config{Quick: *quick, Seed: *seed, CSV: *csv}
	ran := 0
	for _, e := range reg {
		if !all && !want[e.id] {
			continue
		}
		ran++
		fmt.Printf("=== %s ===\n", e.title)
		tables, err := e.run(ctx, os.Stdout, cfg)
		if errors.Is(err, radio.ErrCanceled) {
			return fmt.Errorf("interrupted during %s after %d completed experiment(s); partial results above", e.id, ran-1)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		for _, tb := range tables {
			if cfg.CSV {
				tb.RenderCSV(os.Stdout)
			} else {
				tb.Render(os.Stdout)
			}
			fmt.Println()
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched %q (use -list)", *exps)
	}
	return nil
}
