package main

// Harness regression tests: every registered experiment must run in quick
// mode, produce non-empty tables, and uphold its own internal assertions
// (the experiments fail loudly when a guarantee is violated, so running
// them IS the test).

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"securadio/internal/radio"
)

func TestRegistryIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range registry() {
		if e.id == "" || e.title == "" || e.run == nil {
			t.Fatalf("malformed experiment entry %+v", e)
		}
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	if len(seen) < 13 {
		t.Fatalf("only %d experiments registered", len(seen))
	}
}

func TestAllExperimentsQuickMode(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness sweep")
	}
	cfg := config{Quick: true, Seed: 1}
	for _, e := range registry() {
		e := e
		t.Run(e.id, func(t *testing.T) {
			t.Parallel()
			tables, err := e.run(context.Background(), io.Discard, cfg)
			if err != nil {
				t.Fatalf("experiment %s: %v", e.id, err)
			}
			if len(tables) == 0 {
				t.Fatalf("experiment %s produced no tables", e.id)
			}
			for _, tb := range tables {
				if tb.Len() == 0 {
					t.Fatalf("experiment %s produced an empty table %q", e.id, tb.Title)
				}
				var sb strings.Builder
				tb.Render(&sb)
				if !strings.Contains(sb.String(), "-") {
					t.Fatalf("experiment %s table %q rendered oddly", e.id, tb.Title)
				}
			}
		})
	}
}

func TestTablesRenderAsCSV(t *testing.T) {
	cfg := config{Quick: true, Seed: 1}
	tables, err := expGreedy(context.Background(), io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tables[0].RenderCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("csv too short:\n%s", sb.String())
	}
	if !strings.Contains(lines[0], ",") {
		t.Fatalf("csv header missing commas: %q", lines[0])
	}
}

// TestExperimentsAbortOnCancelledContext pins the interrupt contract the
// main loop relies on: every registered experiment must return an error
// wrapping radio.ErrCanceled for an already-cancelled context (which the
// loop turns into the "interrupted during ..." banner and a non-zero
// exit) rather than running its sweeps to completion.
func TestExperimentsAbortOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := config{Quick: true, Seed: 1}
	for _, e := range registry() {
		e := e
		t.Run(e.id, func(t *testing.T) {
			t.Parallel()
			_, err := e.run(ctx, io.Discard, cfg)
			if !errors.Is(err, radio.ErrCanceled) {
				t.Fatalf("experiment %s with cancelled ctx = %v, want radio.ErrCanceled", e.id, err)
			}
		})
	}
}
