// Command fleetsim runs scenario campaigns: fleets of independent radio-
// network simulations fanned across all cores, with streaming aggregation.
//
// Usage:
//
//	fleetsim list
//	fleetsim run -campaign fame-jam -runs 500
//	fleetsim run -campaign groupkey-burst -runs 200 -seed 7 -format json
//	fleetsim run -campaign fame-worst -runs 1000 -format csv -out agg.csv
//
// For a fixed -seed the aggregate JSON is byte-for-byte deterministic,
// independent of worker count and scheduling, making it suitable for
// cross-PR trajectory tracking.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"securadio"
	"securadio/internal/metrics"
)

// errReported signals a failure that has already been reported to the
// user (by the FlagSet, or by the interrupted-campaign banner); main must
// exit nonzero without printing it a second time.
var errReported = errors.New("error already reported")

func main() {
	// SIGINT/SIGTERM cancel the campaign: dispatch stops, in-flight
	// simulations abort at their next round boundary, the aggregate of the
	// completed runs is still reported, and the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errReported) {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: fleetsim <list|run> [flags]")
	}
	switch args[0] {
	case "list":
		return runList(out)
	case "run":
		return runCampaign(ctx, args[1:], out)
	default:
		return fmt.Errorf("unknown command %q (want list or run)", args[0])
	}
}

func runList(out io.Writer) error {
	t := metrics.NewTable("built-in scenarios", "name", "proto", "n", "c", "t", "adversary", "description")
	for _, s := range securadio.Scenarios() {
		t.AddRow(s.Name, s.Proto, s.N, s.C, s.T, s.Adversary, s.Desc)
	}
	t.Render(out)
	fmt.Fprintf(out, "\nadversary strategies: %v\n", securadio.AdversaryStrategies())
	return nil
}

func runCampaign(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetsim run", flag.ContinueOnError)
	var (
		campaign = fs.String("campaign", "", "scenario name (see fleetsim list)")
		runs     = fs.Int("runs", 500, "number of independent runs in the seed grid")
		seed     = fs.Int64("seed", 1, "campaign master seed")
		workers  = fs.Int("workers", 0, "worker pool size (0 = all cores)")
		format   = fs.String("format", "table", "report format: table | json | csv")
		outPath  = fs.String("out", "", "write the report to a file instead of stdout")
		timeout  = fs.Duration("timeout", 0, "abort the campaign after this duration (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errReported
	}
	if *campaign == "" {
		return errors.New("missing -campaign (see fleetsim list)")
	}
	sc, ok := securadio.LookupScenario(*campaign)
	if !ok {
		return fmt.Errorf("unknown campaign %q (see fleetsim list)", *campaign)
	}
	switch *format {
	case "table", "json", "csv":
	default:
		// Reject before the campaign runs: a typo here must not cost a
		// multi-minute run (or truncate an existing -out file).
		return fmt.Errorf("unknown format %q (want table, json or csv)", *format)
	}
	c := securadio.Campaign{Scenario: sc, Runs: *runs, Seed: *seed, Workers: *workers}
	if err := c.Validate(); err != nil {
		return err
	}
	// Open the report destination before the campaign runs: an unwritable
	// -out path must not cost a multi-minute run.
	var file *os.File
	w := out
	if *outPath != "" {
		f, cerr := os.Create(*outPath)
		if cerr != nil {
			return cerr
		}
		file = f
		// Backstop close for the error-return paths below; the success
		// path closes explicitly so flush errors are observed (the
		// harmless second Close just errors and is ignored).
		defer f.Close()
		w = f
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	agg, err := securadio.RunCampaign(ctx, c)
	if err != nil && agg == nil {
		return err
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: campaign interrupted (%v); reporting %d completed runs\n", err, agg.Runs)
		err = errReported
	}
	// Track write failures: WriteTable/WriteCSV print through fmt and
	// report nothing themselves, and a full disk must not exit 0.
	tw := &trackedWriter{w: w}
	switch *format {
	case "table":
		agg.WriteTable(tw)
	case "json":
		if jerr := agg.WriteJSON(tw); jerr != nil {
			return jerr
		}
	case "csv":
		agg.WriteCSV(tw)
	}
	if tw.err != nil {
		return fmt.Errorf("writing report: %w", tw.err)
	}
	if file != nil {
		if cerr := file.Close(); cerr != nil {
			return cerr
		}
	}
	return err
}

// trackedWriter remembers the first write error so report emission paths
// without error returns still surface I/O failures.
type trackedWriter struct {
	w   io.Writer
	err error
}

func (t *trackedWriter) Write(p []byte) (int, error) {
	if t.err != nil {
		return 0, t.err
	}
	n, err := t.w.Write(p)
	if err != nil {
		t.err = err
	}
	return n, err
}
