// Command fleetsim runs scenario campaigns and parameter sweeps: fleets of
// independent radio-network simulations fanned across all cores, with
// streaming aggregation and deterministic matrix reports.
//
// Usage:
//
//	fleetsim list [-scenarios file.json]
//	fleetsim run -campaign fame-jam -runs 500
//	fleetsim run -scenarios my.json -campaign my-scenario -runs 200 -format json
//	fleetsim sweep -base fame-clear -n 20,32,64 -t 0,1 -adv none,jam,combo -runs 100
//	fleetsim sweep -base fame-clear -churn 0,0.1,0.2 -loss 0,0.05 -runs 100
//	fleetsim sweep -scenarios my.json -sweep my-grid -format csv -out grid.csv
//	fleetsim sweep -base fame-worst -adaptive c -min 2 -max 16 -runs 200
//	fleetsim sweep -base fame-jam -t 0,1,2 -runs 500 -workers-exec self -workers 4
//	fleetsim sweep -scenarios my.json -sweep my-grid -checkpoint grid.ckpt
//	fleetsim sweep -scenarios my.json -sweep my-grid -checkpoint grid.ckpt -resume
//	fleetsim sweep -base fame-jam -t 0,1,2 -runs 500 -listen 127.0.0.1:9000
//	fleetsim worker -connect 10.0.0.5:9000
//	fleetsim analyze -in sweep.json -format table
//	fleetsim diff -threshold 0.05 old-sweep.json new-sweep.json
//	fleetsim serve -addr 127.0.0.1:8080 -store ./reports
//	fleetsim serve -scenarios my.json -max-concurrent 2 -queue-limit 32
//
// For a fixed -seed the aggregate and sweep JSON are byte-for-byte
// deterministic, independent of worker count and scheduling, making them
// suitable for cross-PR trajectory tracking; fleetsim diff compares two
// such sweep reports cell by cell and exits non-zero when a cell's
// delivery rate regressed beyond the threshold, so CI can gate on it.
//
// fleetsim serve runs the campaign service: a long-running daemon that
// accepts campaign and sweep jobs over HTTP (POST /jobs, with the same
// JSON schema as -scenarios catalogs), queues them per tenant, streams
// per-run progress as Server-Sent Events (GET /jobs/{id}/events), and
// stores completed reports content-addressed — byte-identical to the
// one-shot CLI's JSON reports. SIGTERM drains gracefully: submissions
// stop, running jobs finish (bounded by -drain-timeout), streams close
// with a terminal event, and the daemon exits 0.
//
// The fabric flags distribute a sweep cell by cell: -workers-exec spawns
// subprocess workers ("self" re-executes this binary's worker
// subcommand, anything else is a command line), -listen accepts remote
// workers over TCP (started with fleetsim worker -connect), and
// -checkpoint journals completed cells so -resume can finish a killed
// sweep without re-running them. Because per-cell aggregates are
// seed-deterministic, the distributed report is byte-identical to the
// single-process one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"securadio"
	"securadio/internal/metrics"
)

// errReported signals a failure that has already been reported to the
// user (by the FlagSet, or by the interrupted-campaign banner); main must
// exit nonzero without printing it a second time.
var errReported = errors.New("error already reported")

func main() {
	// SIGINT/SIGTERM cancel the campaign: dispatch stops, in-flight
	// simulations abort at their next round boundary, the aggregate of the
	// completed runs is still reported, and the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errReported) {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: fleetsim <list|run|sweep|worker|serve|analyze|diff> [flags]")
	}
	switch args[0] {
	case "list":
		return runList(args[1:], out)
	case "run":
		return runCampaign(ctx, args[1:], out)
	case "sweep":
		return runSweep(ctx, args[1:], out)
	case "worker":
		return runWorker(ctx, args[1:], out)
	case "serve":
		return runServe(ctx, args[1:], out)
	case "analyze":
		return runAnalyze(args[1:], out)
	case "diff":
		return runDiff(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q (want list, run, sweep, worker, serve, analyze or diff)", args[0])
	}
}

// runWorker serves the fabric worker protocol: leases arrive on stdin
// (or a TCP connection with -connect), each cell campaign runs across
// this process's cores, and the aggregate goes back on the same stream.
// The process exits cleanly when the coordinator closes the stream.
func runWorker(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetsim worker", flag.ContinueOnError)
	connect := fs.String("connect", "", "dial a coordinator's -listen address over TCP instead of serving stdin/stdout")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errReported
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (the worker takes leases from its coordinator, not the command line)", fs.Arg(0))
	}
	if *connect != "" {
		return securadio.DialSweepWorker(ctx, *connect)
	}
	return securadio.ServeSweepWorker(ctx, os.Stdin, out)
}

// runServe runs the campaign service daemon until the context is
// cancelled (SIGINT/SIGTERM), then drains gracefully: submissions stop,
// running jobs finish within -drain-timeout (force-cancelled past it),
// every subscriber's stream ends with a terminal event, and the exit
// code is 0 for a clean drain.
func runServe(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetsim serve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8080", "HTTP listen address (host:port; port 0 picks a free port)")
		storeDir      = fs.String("store", "", "directory for the content-addressed report store (empty = in-memory only)")
		scenariosPath = fs.String("scenarios", "", "JSON scenario catalog served to all tenants (submissions may embed their own)")
		maxConcurrent = fs.Int("max-concurrent", 1, "jobs executing simultaneously (each still uses the full worker pool)")
		queueLimit    = fs.Int("queue-limit", 64, "pending jobs allowed per tenant before submissions are rejected")
		streamBuffer  = fs.Int("stream-buffer", 256, "per-subscriber event ring size (a slow subscriber drops its own oldest events)")
		workers       = fs.Int("workers", 0, "per-job simulation worker pool size (0 = all cores)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for running jobs before cancelling them")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errReported
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (the service takes jobs over HTTP, not the command line)", fs.Arg(0))
	}
	if err := checkPositiveDuration(fs, "drain-timeout", *drainTimeout); err != nil {
		return err
	}
	if *maxConcurrent < 1 {
		return fmt.Errorf("-max-concurrent %d, want >= 1", *maxConcurrent)
	}
	if *queueLimit < 1 {
		return fmt.Errorf("-queue-limit %d, want >= 1", *queueLimit)
	}
	catalog, err := loadCatalog(*scenariosPath)
	if err != nil {
		return err
	}

	srv, err := securadio.NewCampaignServer(securadio.ServiceConfig{
		MaxConcurrent: *maxConcurrent,
		QueueLimit:    *queueLimit,
		Workers:       *workers,
		StreamBuffer:  *streamBuffer,
		StoreDir:      *storeDir,
		Catalog:       catalog,
		Log:           os.Stderr,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stderr so scripts using port 0 can
	// discover the port without parsing logs.
	fmt.Fprintf(os.Stderr, "fleetsim: serving on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "fleetsim: shutdown signal, draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	// Streams have all ended (every job is terminal), so Shutdown only
	// waits out idle keep-alive connections.
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
	}
	if drainErr != nil {
		return fmt.Errorf("drain timed out; running jobs were cancelled: %w", drainErr)
	}
	fmt.Fprintln(os.Stderr, "fleetsim: drained cleanly")
	return nil
}

// checkPositiveDuration rejects an explicitly-set non-positive duration
// flag: a zero or negative -drain-timeout/-lease-timeout would silently
// select a default (or an instant deadline), which is always a typo.
func checkPositiveDuration(fs *flag.FlagSet, name string, v time.Duration) error {
	explicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			explicit = true
		}
	})
	if explicit && v <= 0 {
		return fmt.Errorf("-%s %v, want a positive duration", name, v)
	}
	return nil
}

// loadCatalog parses -scenarios when given; a nil catalog means built-ins
// only.
func loadCatalog(path string) (*securadio.ScenarioFile, error) {
	if path == "" {
		return nil, nil
	}
	return securadio.LoadScenarioFile(path)
}

// lookupScenario resolves a name through the catalog (which shadows and
// falls back to the built-ins) or the built-in registry alone.
func lookupScenario(catalog *securadio.ScenarioFile, name string) (securadio.Scenario, bool) {
	if catalog != nil {
		return catalog.Lookup(name)
	}
	return securadio.LookupScenario(name)
}

func runList(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetsim list", flag.ContinueOnError)
	scenariosPath := fs.String("scenarios", "", "also list scenarios/sweeps from a JSON catalog file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errReported
	}
	catalog, err := loadCatalog(*scenariosPath)
	if err != nil {
		return err
	}

	t := metrics.NewTable("built-in scenarios", "name", "proto", "n", "c", "t", "adversary", "description")
	for _, s := range securadio.Scenarios() {
		t.AddRow(s.Name, s.Proto, s.N, s.C, s.T, s.Adversary, s.Desc)
	}
	t.Render(out)
	if catalog != nil {
		ft := metrics.NewTable("scenarios from "+*scenariosPath, "name", "proto", "n", "c", "t", "adversary", "description")
		for _, s := range catalog.Scenarios {
			ft.AddRow(s.Name, s.Proto, s.N, s.C, s.T, s.Adversary, s.Desc)
		}
		if ft.Len() > 0 {
			fmt.Fprintln(out)
			ft.Render(out)
		}
		st := metrics.NewTable("sweeps from "+*scenariosPath, "name", "base", "cells", "runs/cell", "description")
		for _, sw := range catalog.Sweeps {
			cells := "?"
			if cs, err := sw.Cells(); err == nil {
				cells = strconv.Itoa(len(cs))
			}
			st.AddRow(sw.Name, sw.Base.Name, cells, sw.Runs, sw.Desc)
		}
		if st.Len() > 0 {
			fmt.Fprintln(out)
			st.Render(out)
		}
		at := metrics.NewTable("adaptive sweeps from "+*scenariosPath, "name", "base", "axis", "range", "runs/cell", "description")
		for _, as := range catalog.Adaptives {
			at.AddRow(as.Name, as.Base.Name, as.Axis, fmt.Sprintf("[%d, %d]", as.Min, as.Max), as.Runs, as.Desc)
		}
		if at.Len() > 0 {
			fmt.Fprintln(out)
			at.Render(out)
		}
	}
	fmt.Fprintf(out, "\nadversary strategies: %v\n", securadio.AdversaryStrategies())
	return nil
}

func runCampaign(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetsim run", flag.ContinueOnError)
	var (
		campaign      = fs.String("campaign", "", "scenario name (see fleetsim list)")
		scenariosPath = fs.String("scenarios", "", "JSON scenario catalog extending the built-ins")
		runs          = fs.Int("runs", 500, "number of independent runs in the seed grid")
		seed          = fs.Int64("seed", 1, "campaign master seed")
		workers       = fs.Int("workers", 0, "worker pool size (0 = all cores)")
		format        = fs.String("format", "table", "report format: table | json | csv")
		outPath       = fs.String("out", "", "write the report to a file instead of stdout")
		timeout       = fs.Duration("timeout", 0, "abort the campaign after this duration (0 = none)")
		trans         = fs.String("transport", "mem", "radio transport backend: mem | udp (loopback sockets)")
		tLoss         = fs.Float64("transport-loss", 0, "udp: injected datagram-loss probability in [0, 1]")
		tWindow       = fs.Duration("transport-window", 0, "udp: receive-window cutoff (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errReported
	}
	if *campaign == "" {
		return errors.New("missing -campaign (see fleetsim list)")
	}
	if err := checkPositiveDuration(fs, "timeout", *timeout); err != nil {
		return err
	}
	catalog, err := loadCatalog(*scenariosPath)
	if err != nil {
		return err
	}
	sc, ok := lookupScenario(catalog, *campaign)
	if !ok {
		return fmt.Errorf("unknown campaign %q (see fleetsim list)", *campaign)
	}
	switch *trans {
	case "mem":
		if *tLoss != 0 || *tWindow != 0 {
			return errors.New("-transport-loss and -transport-window require -transport udp")
		}
	case "udp":
		tr, terr := securadio.NewUDPTransport(securadio.UDPConfig{Loss: *tLoss, Window: *tWindow})
		if terr != nil {
			return terr
		}
		sc.Transport = tr
	default:
		return fmt.Errorf("unknown transport %q (want mem or udp)", *trans)
	}
	if err := checkFormat(*format); err != nil {
		return err
	}
	c := securadio.Campaign{Scenario: sc, Runs: *runs, Seed: *seed, Workers: *workers}
	if err := c.Validate(); err != nil {
		return err
	}
	w, file, err := openOut(out, *outPath)
	if err != nil {
		return err
	}
	if file != nil {
		defer file.Close()
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	agg, err := securadio.RunCampaign(ctx, c)
	if err != nil && agg == nil {
		return err
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: campaign interrupted (%v); reporting %d completed runs\n", err, agg.Runs)
		err = errReported
	}
	return emitReport(*format, w, file, agg, err)
}

// report is the rendering surface shared by every deterministic fleet
// report (campaign aggregate, sweep matrix, adaptive curve, marginals).
type report interface {
	WriteTable(w io.Writer)
	WriteJSON(w io.Writer) error
	WriteCSV(w io.Writer)
}

// emitReport renders a report in the requested format and surfaces I/O
// failures. Track write failures: WriteTable/WriteCSV print through fmt
// and report nothing themselves, and a full disk must not exit 0.
func emitReport(format string, w io.Writer, file *os.File, r report, err error) error {
	tw := &trackedWriter{w: w}
	switch format {
	case "table":
		r.WriteTable(tw)
	case "json":
		if jerr := r.WriteJSON(tw); jerr != nil {
			return jerr
		}
	case "csv":
		r.WriteCSV(tw)
	}
	return finishReport(tw, file, err)
}

// splitInts parses a comma-separated axis flag ("20,32,64"); empty means
// no axis.
func splitInts(flagName, s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("-%s: bad value %q (want comma-separated integers)", flagName, p)
		}
		out = append(out, v)
	}
	return out, nil
}

// splitFloats parses a comma-separated fraction axis flag ("0,0.1,0.2");
// empty means no axis.
func splitFloats(flagName, s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: bad value %q (want comma-separated fractions)", flagName, p)
		}
		out = append(out, v)
	}
	return out, nil
}

// splitStrings parses a comma-separated string axis; empty means no axis.
func splitStrings(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// fabricFlags collects the distributed-sweep knobs of fleetsim sweep.
// Any of them being set routes the sweep through a fabric coordinator
// instead of the in-process executor.
type fabricFlags struct {
	exec       string
	listen     string
	checkpoint string
	resume     bool
	lease      time.Duration
	workers    int // -workers doubles as the subprocess/local session count
}

func (ff fabricFlags) active() bool {
	return ff.exec != "" || ff.listen != "" || ff.checkpoint != "" || ff.resume || ff.lease > 0
}

// open builds the coordinator the flags describe and attaches its
// workers; the caller must Close it. With neither -workers-exec nor
// -listen (checkpoint-only use), cells lease to local in-process
// sessions — one at a time by default, each cell's runs still fanning
// across all cores.
func (ff fabricFlags) open() (*securadio.Fabric, error) {
	co := securadio.NewFabric(securadio.FabricConfig{
		LeaseTimeout: ff.lease,
		Checkpoint:   ff.checkpoint,
		Resume:       ff.resume,
		Log:          os.Stderr,
	})
	attached := false
	if ff.exec != "" {
		argv := strings.Fields(ff.exec)
		if len(argv) == 1 && argv[0] == "self" {
			exe, err := os.Executable()
			if err != nil {
				co.Close()
				return nil, err
			}
			argv = []string{exe, "worker"}
		}
		n := ff.workers
		if n <= 0 {
			n = 2
		}
		if err := co.AttachExec(argv, n); err != nil {
			co.Close()
			return nil, err
		}
		attached = true
	}
	if ff.listen != "" {
		addr, err := co.ListenTCP(ff.listen)
		if err != nil {
			co.Close()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "fleetsim: fabric listening on %s (start workers with: fleetsim worker -connect %s)\n", addr, addr)
		attached = true
	}
	if !attached {
		n := ff.workers
		if n <= 0 {
			n = 1
		}
		co.AttachLocal(n)
	}
	return co, nil
}

func runSweep(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetsim sweep", flag.ContinueOnError)
	var (
		base          = fs.String("base", "", "base scenario name the grid derives from")
		sweepName     = fs.String("sweep", "", "named sweep (cartesian or adaptive) from the -scenarios catalog (instead of -base + axis flags)")
		scenariosPath = fs.String("scenarios", "", "JSON scenario catalog providing scenarios and sweeps")
		nAxis         = fs.String("n", "", "N axis: comma-separated node counts")
		cAxis         = fs.String("c", "", "C axis: comma-separated channel counts")
		tAxis         = fs.String("t", "", "T axis: comma-separated adversary budgets")
		pairsAxis     = fs.String("pairs", "", "Pairs axis: comma-separated AME pair counts")
		regimeAxis    = fs.String("regime", "", "Regime axis: comma-separated of auto|base|2t|2t2")
		advAxis       = fs.String("adv", "", "Adversary axis: comma-separated strategy names")
		emAxis        = fs.String("em", "", "EmRounds axis: comma-separated emulated round counts (secure-group)")
		churnAxis     = fs.String("churn", "", "Churn axis: comma-separated node-churn intensities in [0,1]")
		lossAxis      = fs.String("loss", "", "Loss axis: comma-separated channel-loss rates in [0,1]")
		adaptive      = fs.String("adaptive", "", "adaptive threshold search on one numeric axis (n|c|t|em) instead of a cartesian grid")
		minFlag       = fs.Int("min", 0, "adaptive: axis range lower bound (inclusive)")
		maxFlag       = fs.Int("max", 0, "adaptive: axis range upper bound (inclusive)")
		coarse        = fs.Int("coarse", 0, "adaptive: initial evenly-spaced grid size (0 = default)")
		resolution    = fs.Int("resolution", 0, "adaptive: stop once the threshold bracket is this narrow (0 = default 1)")
		budget        = fs.Int("budget", 0, "adaptive: total evaluated-point budget, coarse grid included (0 = default)")
		runs          = fs.Int("runs", 100, "runs per grid cell")
		seed          = fs.Int64("seed", 1, "sweep master seed")
		workers       = fs.Int("workers", 0, "worker pool size (0 = all cores); with -workers-exec, the subprocess count (0 = 2)")
		format        = fs.String("format", "table", "report format: table | json | csv")
		outPath       = fs.String("out", "", "write the report to a file instead of stdout")
		timeout       = fs.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
		workersExec   = fs.String("workers-exec", "", "distribute cells to subprocess workers running this command (\"self\" = this binary's worker subcommand)")
		listenAddr    = fs.String("listen", "", "distribute cells to remote workers that connect to this TCP address (see fleetsim worker -connect)")
		checkpoint    = fs.String("checkpoint", "", "journal completed cells to this file so a killed sweep can -resume")
		resume        = fs.Bool("resume", false, "replay the -checkpoint journal and run only the remaining cells")
		leaseTimeout  = fs.Duration("lease-timeout", 0, "re-issue a leased cell after this long without a result (0 = default 2m)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errReported
	}
	// Flags the user explicitly passed, as opposed to defaults: explicit
	// execution knobs must override a catalog sweep's values rather than
	// being silently ignored.
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := checkPositiveDuration(fs, "timeout", *timeout); err != nil {
		return err
	}
	if err := checkPositiveDuration(fs, "lease-timeout", *leaseTimeout); err != nil {
		return err
	}
	catalog, err := loadCatalog(*scenariosPath)
	if err != nil {
		return err
	}
	ff := fabricFlags{
		exec: *workersExec, listen: *listenAddr,
		checkpoint: *checkpoint, resume: *resume,
		lease: *leaseTimeout, workers: *workers,
	}
	if ff.resume && ff.checkpoint == "" {
		return errors.New("-resume requires -checkpoint (the journal to replay)")
	}

	// Resolve the work definition: exactly one of a cartesian sweep or an
	// adaptive search, from flags or from the catalog.
	var (
		sweep securadio.Sweep
		adapt *securadio.AdaptiveSweep
	)
	switch {
	case *adaptive != "":
		if *sweepName != "" {
			return errors.New("-adaptive and -sweep are mutually exclusive")
		}
		if *base == "" {
			return errors.New("-adaptive requires -base (the scenario the search derives from)")
		}
		for _, axis := range []string{"n", "c", "t", "pairs", "regime", "adv", "em", "churn", "loss"} {
			if explicit[axis] {
				return fmt.Errorf("-%s defines a cartesian grid axis and cannot combine with -adaptive", axis)
			}
		}
		if !explicit["min"] || !explicit["max"] {
			return errors.New("-adaptive requires -min and -max (the axis search range)")
		}
		sc, ok := lookupScenario(catalog, *base)
		if !ok {
			return fmt.Errorf("unknown base scenario %q (see fleetsim list)", *base)
		}
		adapt = &securadio.AdaptiveSweep{
			Base: sc, Axis: *adaptive,
			Min: *minFlag, Max: *maxFlag,
			Coarse: *coarse, Resolution: *resolution, MaxCells: *budget,
			Runs: *runs, Seed: *seed, Workers: *workers,
		}

	case *sweepName != "":
		if catalog == nil {
			return errors.New("-sweep requires -scenarios (sweeps are defined in catalog files)")
		}
		if explicit["base"] {
			return fmt.Errorf("-base and -sweep are mutually exclusive (catalog sweep %q defines its own base)", *sweepName)
		}
		for _, axis := range []string{"n", "c", "t", "pairs", "regime", "adv", "em", "churn", "loss"} {
			if explicit[axis] {
				return fmt.Errorf("-%s defines a -base grid axis and cannot reshape the catalog sweep %q", axis, *sweepName)
			}
		}
		for _, shape := range []string{"min", "max", "coarse", "resolution", "budget"} {
			if explicit[shape] {
				return fmt.Errorf("-%s shapes a -base adaptive search and cannot reshape the catalog sweep %q", shape, *sweepName)
			}
		}
		if sw, ok := catalog.LookupSweep(*sweepName); ok {
			sweep = sw
			// Execution knobs: an explicit flag wins over the catalog; the
			// catalog wins over the flag's default.
			if explicit["runs"] || sweep.Runs == 0 {
				sweep.Runs = *runs
			}
			if explicit["seed"] || sweep.Seed == 0 {
				sweep.Seed = *seed
			}
		} else if as, ok := catalog.LookupAdaptive(*sweepName); ok {
			if explicit["runs"] || as.Runs == 0 {
				as.Runs = *runs
			}
			if explicit["seed"] || as.Seed == 0 {
				as.Seed = *seed
			}
			adapt = &as
		} else {
			return fmt.Errorf("unknown sweep %q in %s (have: %s)", *sweepName, *scenariosPath, catalog.Names())
		}

	case *base != "":
		sc, ok := lookupScenario(catalog, *base)
		if !ok {
			return fmt.Errorf("unknown base scenario %q (see fleetsim list)", *base)
		}
		sweep = securadio.Sweep{Base: sc, Runs: *runs, Seed: *seed}
		if sweep.N, err = splitInts("n", *nAxis); err != nil {
			return err
		}
		if sweep.C, err = splitInts("c", *cAxis); err != nil {
			return err
		}
		if sweep.T, err = splitInts("t", *tAxis); err != nil {
			return err
		}
		if sweep.Pairs, err = splitInts("pairs", *pairsAxis); err != nil {
			return err
		}
		if sweep.EmRounds, err = splitInts("em", *emAxis); err != nil {
			return err
		}
		if sweep.Churn, err = splitFloats("churn", *churnAxis); err != nil {
			return err
		}
		if sweep.Loss, err = splitFloats("loss", *lossAxis); err != nil {
			return err
		}
		sweep.Adversary = splitStrings(*advAxis)
		for _, spell := range splitStrings(*regimeAxis) {
			// ParseRegime maps "" to auto for scenario files that omit the
			// field; on an axis flag an empty element is a typo (trailing
			// comma) that would silently widen the grid.
			if spell == "" {
				return errors.New("-regime: empty axis element (want comma-separated of auto|base|2t|2t2)")
			}
			r, rerr := securadio.ParseRegime(spell)
			if rerr != nil {
				return rerr
			}
			sweep.Regime = append(sweep.Regime, r)
		}
	default:
		return errors.New("missing -base (grid from flags) or -sweep (grid from a -scenarios catalog)")
	}
	// An explicit -workers overrides the catalog's setting; the flag's
	// default leaves a catalog value (or GOMAXPROCS) in charge.
	if explicit["workers"] {
		if adapt != nil {
			adapt.Workers = *workers
		} else {
			sweep.Workers = *workers
		}
	}

	if err := checkFormat(*format); err != nil {
		return err
	}
	if adapt != nil {
		err = adapt.Validate()
	} else {
		err = sweep.Validate()
	}
	if err != nil {
		return err
	}
	w, file, err := openOut(out, *outPath)
	if err != nil {
		return err
	}
	if file != nil {
		defer file.Close()
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var co *securadio.Fabric
	if ff.active() {
		co, err = ff.open()
		if err != nil {
			return err
		}
		defer co.Close()
	}

	if adapt != nil {
		var res *securadio.AdaptiveResult
		if co != nil {
			res, err = co.RunAdaptiveSweep(ctx, *adapt)
		} else {
			res, err = securadio.RunAdaptiveSweep(ctx, *adapt)
		}
		if err != nil && res == nil {
			return err
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: adaptive sweep interrupted (%v); reporting completed points\n", err)
			err = errReported
		}
		return emitReport(*format, w, file, res, err)
	}

	var matrix *securadio.SweepResult
	if co != nil {
		matrix, err = co.RunSweep(ctx, sweep)
	} else {
		matrix, err = securadio.RunSweep(ctx, sweep)
	}
	if err != nil && matrix == nil {
		return err
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: sweep interrupted (%v); reporting completed runs\n", err)
		err = errReported
	}
	return emitReport(*format, w, file, matrix, err)
}

// runAnalyze loads a sweep matrix report from disk and emits its per-axis
// marginal summaries — the threshold curves of the paper, computed from
// the matrix instead of eyeballed off it.
func runAnalyze(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetsim analyze", flag.ContinueOnError)
	var (
		inPath  = fs.String("in", "", "sweep matrix JSON (as written by fleetsim sweep -format json)")
		format  = fs.String("format", "table", "report format: table | json | csv")
		outPath = fs.String("out", "", "write the report to a file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errReported
	}
	if *inPath == "" {
		return errors.New("missing -in (a sweep JSON report)")
	}
	if err := checkFormat(*format); err != nil {
		return err
	}
	matrix, err := securadio.LoadSweepResult(*inPath)
	if err != nil {
		return err
	}
	marginals, err := securadio.Marginals(matrix)
	if err != nil {
		return err
	}
	w, file, err := openOut(out, *outPath)
	if err != nil {
		return err
	}
	if file != nil {
		defer file.Close()
	}
	return emitReport(*format, w, file, marginals, nil)
}

// runDiff compares two sweep matrix reports and exits non-zero when any
// cell's delivery rate regressed beyond the threshold (or cells vanished /
// stopped being runnable), so CI can gate cross-PR trajectories on it.
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetsim diff", flag.ContinueOnError)
	var (
		threshold = fs.Float64("threshold", 0, "tolerated per-cell delivery-rate drop (0 = any drop regresses)")
		format    = fs.String("format", "table", "report format: table | json | csv")
		outPath   = fs.String("out", "", "write the report to a file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errReported
	}
	if fs.NArg() != 2 {
		return errors.New("usage: fleetsim diff [flags] old-sweep.json new-sweep.json")
	}
	if *threshold < 0 {
		return fmt.Errorf("-threshold %g is negative (it is a tolerated delivery-rate drop, >= 0)", *threshold)
	}
	if err := checkFormat(*format); err != nil {
		return err
	}
	older, err := securadio.LoadSweepResult(fs.Arg(0))
	if err != nil {
		return err
	}
	newer, err := securadio.LoadSweepResult(fs.Arg(1))
	if err != nil {
		return err
	}
	d := securadio.DiffSweeps(older, newer, securadio.DiffOptions{Threshold: *threshold})
	w, file, err := openOut(out, *outPath)
	if err != nil {
		return err
	}
	if file != nil {
		defer file.Close()
	}
	if err := emitReport(*format, w, file, d, nil); err != nil {
		return err
	}
	if d.Regressed() {
		// The report already names the regressed cells; exit non-zero so a
		// CI gate fails without parsing the output.
		return fmt.Errorf("%d regression(s) beyond threshold %g", d.Regressions, *threshold)
	}
	return nil
}

// checkFormat rejects unknown report formats before a campaign runs: a
// typo must not cost a multi-minute run (or truncate an existing -out
// file).
func checkFormat(format string) error {
	switch format {
	case "table", "json", "csv":
		return nil
	default:
		return fmt.Errorf("unknown format %q (want table, json or csv)", format)
	}
}

// openOut resolves the report destination before the campaign runs: an
// unwritable -out path must not cost a multi-minute run. The returned
// file (nil for stdout) carries a backstop Close for error paths; the
// success path closes explicitly through finishReport so flush errors are
// observed.
func openOut(out io.Writer, path string) (io.Writer, *os.File, error) {
	if path == "" {
		return out, nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f, nil
}

// finishReport surfaces report I/O failures: write errors tracked by tw,
// then the -out file's Close (the harmless second Close from the deferred
// backstop just errors and is ignored).
func finishReport(tw *trackedWriter, file *os.File, err error) error {
	if tw.err != nil {
		return fmt.Errorf("writing report: %w", tw.err)
	}
	if file != nil {
		if cerr := file.Close(); cerr != nil {
			return cerr
		}
	}
	return err
}

// trackedWriter remembers the first write error so report emission paths
// without error returns still surface I/O failures.
type trackedWriter struct {
	w   io.Writer
	err error
}

func (t *trackedWriter) Write(p []byte) (int, error) {
	if t.err != nil {
		return 0, t.err
	}
	n, err := t.w.Write(p)
	if err != nil {
		t.err = err
	}
	return n, err
}
