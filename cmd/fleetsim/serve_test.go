package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServeDaemon launches a real `fleetsim serve` daemon (via the
// __fleetsim TestMain dispatch, so signals hit a live process) and
// returns its base URL once the listener is up.
func startServeDaemon(t *testing.T, extraArgs ...string) (*exec.Cmd, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"__fleetsim", "serve", "-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(exe, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The daemon announces its resolved listen address on stderr; keep
	// draining the pipe afterwards so the child never blocks on it.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, addr, ok := strings.Cut(line, "serving on "); ok {
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon never announced its listen address")
		return nil, ""
	}
}

// postJob submits a campaign job and returns the decoded status.
func postJob(t *testing.T, base, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", resp.StatusCode, payload)
	}
	var st map[string]any
	if err := json.Unmarshal(payload, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeReportByteIdenticalToOneShotCLI is the service acceptance
// criterion: a campaign submitted to the daemon must store exactly the
// bytes the one-shot `fleetsim run -format json` emits for the same
// scenario, runs and seed.
func TestServeReportByteIdenticalToOneShotCLI(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.json")
	if err := run(context.Background(), []string{
		"run", "-campaign", "fame-jam", "-runs", "12", "-seed", "5",
		"-format", "json", "-out", ref,
	}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	cmd, base := startServeDaemon(t, "-store", filepath.Join(dir, "reports"))
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	st := postJob(t, base, `{"campaign":{"scenario":"fame-jam","runs":12,"seed":5}}`)
	id, _ := st["id"].(string)
	if id == "" {
		t.Fatalf("submission status carries no id: %v", st)
	}

	deadline := time.Now().Add(60 * time.Second)
	var sha string
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var cur map[string]any
		json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if state, _ := cur["state"].(string); state == "done" {
			sha, _ = cur["report_sha256"].(string)
			break
		} else if state == "failed" || state == "cancelled" {
			t.Fatalf("job ended %s: %v", state, cur)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %v", cur)
		}
		time.Sleep(20 * time.Millisecond)
	}

	for _, url := range []string{base + "/jobs/" + id + "/report", base + "/reports/" + sha} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("daemon report differs from one-shot CLI output:\n--- daemon ---\n%s\n--- cli ---\n%s", got, want)
		}
	}

	// With no jobs running, SIGTERM drains immediately and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after drain: %v", err)
	}
}

// TestServeSIGTERMDrainsInFlightJob sends SIGTERM while a job streams:
// the drain must let the job finish every run, deliver the terminal
// "end" event to the subscriber, and exit 0.
func TestServeSIGTERMDrainsInFlightJob(t *testing.T) {
	cmd, base := startServeDaemon(t)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	const runs = 200
	st := postJob(t, base, fmt.Sprintf(`{"campaign":{"scenario":"fame-jam","runs":%d,"seed":5}}`, runs))
	id, _ := st["id"].(string)

	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// SIGTERM as soon as the stream proves the job is mid-flight (first
	// "run" event: at least one run done, the rest still to come).
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var (
		typ       string
		runEvents int
		signalled bool
		endStatus map[string]any
	)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			typ = strings.TrimPrefix(line, "event: ")
			if typ == "run" {
				runEvents++
				if !signalled {
					signalled = true
					if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
						t.Fatal(err)
					}
				}
			}
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok && typ == "end" {
			if err := json.Unmarshal([]byte(data), &endStatus); err != nil {
				t.Fatalf("end payload: %v", err)
			}
		}
	}
	if err := sc.Err(); err != nil && !signalled {
		t.Fatalf("stream error before signal: %v", err)
	}
	if endStatus == nil {
		t.Fatal("stream ended without a terminal event")
	}
	if state, _ := endStatus["state"].(string); state != "done" {
		t.Fatalf("drained job ended %q, want done (status %v)", state, endStatus)
	}
	if done, _ := endStatus["runs_done"].(float64); int(done) != runs {
		t.Fatalf("drained job completed %v runs, want %d", done, runs)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM drain: %v", err)
	}
}

// TestRunSIGTERMReportsPartialAndExitsNonZero pins the one-shot CLI's
// signal contract: SIGTERM mid-campaign aborts at the next round
// boundary, the partial aggregate is still reported, and the exit code
// is non-zero.
func TestRunSIGTERMReportsPartialAndExitsNonZero(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "partial.json")
	cmd := exec.Command(exe, "__fleetsim", "run",
		"-campaign", "fame-jam", "-runs", "1000000", "-seed", "1",
		"-format", "json", "-out", out)
	stderr := new(bytes.Buffer)
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Give the campaign a moment to complete some runs, then interrupt.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit after SIGTERM = %v (stderr %q), want code 1", err, stderr)
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("stderr carries no interruption banner: %q", stderr)
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var partial struct {
		Runs int `json:"runs"`
	}
	if err := json.Unmarshal(blob, &partial); err != nil {
		t.Fatalf("partial report is not valid JSON: %v\n%s", err, blob)
	}
	if partial.Runs <= 0 || partial.Runs >= 1000000 {
		t.Fatalf("partial report runs = %d, want 0 < runs < total", partial.Runs)
	}
}

// TestServeFlagValidation pins the serve-side flag rejections, including
// the explicit non-positive duration rule.
func TestServeFlagValidation(t *testing.T) {
	cases := [][]string{
		{"serve", "-drain-timeout", "0s"},
		{"serve", "-drain-timeout", "-5s"},
		{"serve", "-max-concurrent", "0"},
		{"serve", "-queue-limit", "-1"},
		{"serve", "surprise-arg"},
		{"serve", "-scenarios", "does-not-exist.json"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, new(bytes.Buffer)); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// TestDurationFlagValidation pins the shared rule on run and sweep: an
// explicitly non-positive -timeout / -lease-timeout is rejected up
// front instead of silently selecting "no timeout" or a default.
func TestDurationFlagValidation(t *testing.T) {
	cases := [][]string{
		{"run", "-campaign", "fame-jam", "-timeout", "0s"},
		{"run", "-campaign", "fame-jam", "-timeout", "-2s"},
		{"sweep", "-base", "fame-clear", "-t", "0,1", "-timeout", "-1s"},
		{"sweep", "-base", "fame-clear", "-t", "0,1", "-lease-timeout", "0s"},
		{"sweep", "-base", "fame-clear", "-t", "0,1", "-lease-timeout", "-1m"},
	}
	for _, args := range cases {
		err := run(context.Background(), args, new(bytes.Buffer))
		if err == nil {
			t.Errorf("%v accepted", args)
			continue
		}
		if !strings.Contains(err.Error(), "positive duration") {
			t.Errorf("%v: error %q does not name the duration rule", args, err)
		}
	}
	// The defaults (flag unset) must keep working.
	if err := run(context.Background(), []string{
		"run", "-campaign", "fame-clear", "-runs", "1", "-format", "json", "-out",
		filepath.Join(t.TempDir(), "ok.json"),
	}, new(bytes.Buffer)); err != nil {
		t.Fatalf("default timeouts rejected: %v", err)
	}
}
