package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fame-jam", "groupkey", "secure-group", "burst", "hop"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCampaignJSON(t *testing.T) {
	var out bytes.Buffer
	args := []string{"run", "-campaign", "fame-jam", "-runs", "8", "-seed", "3", "-format", "json"}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	var agg struct {
		Scenario string `json:"scenario"`
		Runs     int    `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &agg); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if agg.Scenario != "fame-jam" || agg.Runs != 8 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

func TestRunCampaignTableAndCSV(t *testing.T) {
	for _, format := range []string{"table", "csv"} {
		var out bytes.Buffer
		args := []string{"run", "-campaign", "fame-clear", "-runs", "4", "-format", format}
		if err := run(context.Background(), args, &out); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !strings.Contains(out.String(), "fame-clear") {
			t.Fatalf("%s output missing scenario name:\n%s", format, out.String())
		}
	}
}

func TestRunCampaignOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "agg.json")
	var out bytes.Buffer
	args := []string{"run", "-campaign", "fame-clear", "-runs", "4", "-format", "json", "-out", path}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("file is not JSON: %v", err)
	}
}

func TestRunRejections(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{},
		{"bogus"},
		{"run"},
		{"run", "-campaign", "no-such"},
		{"run", "-campaign", "fame-clear", "-format", "bogus"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}

func TestHelpExitsClean(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"run", "-h"}, &out); err != nil {
		t.Fatalf("-h returned %v, want nil", err)
	}
}
