package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fame-jam", "groupkey", "secure-group", "burst", "hop"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCampaignJSON(t *testing.T) {
	var out bytes.Buffer
	args := []string{"run", "-campaign", "fame-jam", "-runs", "8", "-seed", "3", "-format", "json"}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	var agg struct {
		Scenario string `json:"scenario"`
		Runs     int    `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &agg); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if agg.Scenario != "fame-jam" || agg.Runs != 8 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

func TestRunCampaignTableAndCSV(t *testing.T) {
	for _, format := range []string{"table", "csv"} {
		var out bytes.Buffer
		args := []string{"run", "-campaign", "fame-clear", "-runs", "4", "-format", format}
		if err := run(context.Background(), args, &out); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !strings.Contains(out.String(), "fame-clear") {
			t.Fatalf("%s output missing scenario name:\n%s", format, out.String())
		}
	}
}

func TestRunCampaignOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "agg.json")
	var out bytes.Buffer
	args := []string{"run", "-campaign", "fame-clear", "-runs", "4", "-format", "json", "-out", path}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("file is not JSON: %v", err)
	}
}

func TestRunRejections(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{},
		{"bogus"},
		{"run"},
		{"run", "-campaign", "no-such"},
		{"run", "-campaign", "fame-clear", "-format", "bogus"},
		{"run", "-campaign", "fame-clear", "-scenarios", "no-such-file.json"},
		{"sweep"},
		{"sweep", "-base", "no-such"},
		{"sweep", "-base", "fame-clear", "-n", "20,bogus"},
		{"sweep", "-base", "fame-clear", "-regime", "3t"},
		{"sweep", "-base", "fame-clear", "-format", "bogus"},
		{"sweep", "-base", "fame-clear", "-runs", "0"},
		{"sweep", "-sweep", "grid"}, // -sweep without -scenarios
		{"sweep", "-sweep", "no-such", "-scenarios", fixturePath},
		{"sweep", "-sweep", "spectrum-grid", "-scenarios", fixturePath, "-n", "24"},          // axis flags are -base only
		{"sweep", "-sweep", "spectrum-grid", "-scenarios", fixturePath, "-base", "fame-jam"}, // mutually exclusive
		{"sweep", "-base", "fame-clear", "-em", "4,8"},                                       // em axis needs a secure-group base
		{"sweep", "-base", "fame-clear", "-adv", "none,jma"},                                 // adversary typos fail fast
		{"run", "-campaign", "fame-clear", "-transport", "bogus"},
		{"run", "-campaign", "fame-clear", "-transport", "udp", "-transport-loss", "1.5"},
		{"run", "-campaign", "fame-clear", "-transport", "udp", "-transport-loss", "-0.1"},
		{"run", "-campaign", "fame-clear", "-transport", "udp", "-transport-window", "-1s"},
		{"run", "-campaign", "fame-clear", "-transport-loss", "0.1"},  // tuning requires -transport udp
		{"run", "-campaign", "fame-clear", "-transport-window", "1s"}, // tuning requires -transport udp
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunCampaignTransportUDP pins the cross-transport contract at the
// CLI layer: a lossless campaign over loopback UDP must emit the exact
// aggregate JSON of the in-memory run for the same seed grid.
func TestRunCampaignTransportUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("binds sockets per run")
	}
	campaign := func(extra ...string) string {
		var out bytes.Buffer
		args := append([]string{"run", "-campaign", "fame-clear", "-runs", "4", "-seed", "9", "-format", "json"}, extra...)
		if err := run(context.Background(), args, &out); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return out.String()
	}
	mem := campaign()
	udp := campaign("-transport", "udp")
	if mem != udp {
		t.Fatalf("udp aggregate diverged from in-memory aggregate:\n  mem: %s\n  udp: %s", mem, udp)
	}
}

// fixturePath is the in-repo example catalog, shared with the CI
// scenario-file check.
const fixturePath = "../../testdata/scenarios.example.json"

func TestListWithCatalog(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"list", "-scenarios", fixturePath}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wide-fame", "long-securegroup", "spectrum-grid", "spectrum-threshold", "combo"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("catalog listing missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCatalogScenario(t *testing.T) {
	var out bytes.Buffer
	args := []string{"run", "-scenarios", fixturePath, "-campaign", "wide-fame", "-runs", "3", "-seed", "2", "-format", "json"}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	var agg struct {
		Scenario string `json:"scenario"`
		N        int    `json:"n"`
		Runs     int    `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &agg); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if agg.Scenario != "wide-fame" || agg.N != 32 || agg.Runs != 3 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

// TestSweepDeterministicAcrossWorkers is the CLI half of the acceptance
// criterion: a 3-axis grid emits byte-identical JSON for -workers 1 and 8.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "w1.json"), filepath.Join(dir, "w8.json")}
	for i, workers := range []string{"1", "8"} {
		var out bytes.Buffer
		args := []string{"sweep", "-base", "fame-clear", "-n", "20,24", "-t", "0,1",
			"-adv", "none,jam", "-runs", "3", "-seed", "9", "-workers", workers,
			"-format", "json", "-out", paths[i]}
		if err := run(context.Background(), args, &out); err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
	}
	w1, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	w8, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1, w8) {
		t.Fatalf("sweep JSON differs between -workers 1 and 8:\n%s\nvs\n%s", w1, w8)
	}
	var matrix struct {
		Cells []struct {
			Cell string `json:"cell"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(w1, &matrix); err != nil {
		t.Fatal(err)
	}
	if len(matrix.Cells) != 8 {
		t.Fatalf("matrix has %d cells, want 8", len(matrix.Cells))
	}
}

func TestSweepFromCatalog(t *testing.T) {
	var out bytes.Buffer
	// An explicit -runs overrides the catalog's 25 runs/cell.
	args := []string{"sweep", "-scenarios", fixturePath, "-sweep", "spectrum-grid", "-runs", "2", "-format", "json"}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	var matrix struct {
		RunsPerCell int `json:"runs_per_cell"`
		Cells       []struct {
			Cell string `json:"cell"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(out.Bytes(), &matrix); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	// 2 x 2 x 3 grid.
	if len(matrix.Cells) != 12 {
		t.Fatalf("matrix has %d cells, want 12:\n%s", len(matrix.Cells), out.String())
	}
	if matrix.RunsPerCell != 2 {
		t.Fatalf("runs_per_cell = %d, want the explicit -runs 2", matrix.RunsPerCell)
	}
	if matrix.Cells[11].Cell != "spectrum-grid/n=32,t=1,adv=combo" {
		t.Fatalf("last cell = %q", matrix.Cells[11].Cell)
	}
}

func TestHelpExitsClean(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"run", "-h"}, &out); err != nil {
		t.Fatalf("-h returned %v, want nil", err)
	}
}

// sweepJSONFixture runs a small sweep to a temp file and returns the path.
func sweepJSONFixture(t *testing.T, dir, name string, seed string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var out bytes.Buffer
	args := []string{"sweep", "-base", "fame-clear", "-n", "20,24", "-adv", "none,jam",
		"-runs", "3", "-seed", seed, "-format", "json", "-out", path}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffIdenticalExitsClean is the CLI half of the diff acceptance
// criterion: identical sweep reports diff to zero deltas and a nil error
// (exit 0).
func TestDiffIdenticalExitsClean(t *testing.T) {
	dir := t.TempDir()
	a := sweepJSONFixture(t, dir, "a.json", "7")
	b := sweepJSONFixture(t, dir, "b.json", "7")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"diff", a, b}, &out); err != nil {
		t.Fatalf("diff of identical reports: %v", err)
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("diff output:\n%s", out.String())
	}
}

// TestDiffRegressionExitsNonZero: a perturbed cell beyond the threshold
// must produce an error (non-zero exit) after the report is written.
func TestDiffRegressionExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	a := sweepJSONFixture(t, dir, "a.json", "7")
	blob, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the first cell's delivery rate well below the threshold.
	var doc map[string]any
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	agg := doc["cells"].([]any)[0].(map[string]any)["aggregate"].(map[string]any)
	agg["delivery_rate"] = agg["delivery_rate"].(float64) - 0.5
	perturbed, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(dir, "b.json")
	if err := os.WriteFile(b, perturbed, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run(context.Background(), []string{"diff", "-threshold", "0.05", a, b}, &out)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("perturbed diff err = %v, want a regression failure", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("diff output:\n%s", out.String())
	}
	// The same perturbation within a generous threshold passes.
	if err := run(context.Background(), []string{"diff", "-threshold", "2", a, b}, &out); err != nil {
		t.Fatalf("tolerant diff: %v", err)
	}
}

func TestDiffJSONFormat(t *testing.T) {
	dir := t.TempDir()
	a := sweepJSONFixture(t, dir, "a.json", "7")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"diff", "-format", "json", a, a}, &out); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Regressions int `json:"regressions"`
		Cells       []struct {
			DeltaRate float64 `json:"delta_rate"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if d.Regressions != 0 || len(d.Cells) != 4 {
		t.Fatalf("diff = %+v", d)
	}
	out.Reset()
	if err := run(context.Background(), []string{"diff", "-format", "csv", a, a}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "cell,old_rate,") {
		t.Fatalf("diff csv: want header + 4 cells:\n%s", out.String())
	}
}

func TestAnalyzeMarginals(t *testing.T) {
	dir := t.TempDir()
	path := sweepJSONFixture(t, dir, "sweep.json", "7")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"analyze", "-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"marginal over n", "marginal over adv", "delivery_rate"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("analyze output missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := run(context.Background(), []string{"analyze", "-in", path, "-format", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	var m struct {
		Axes []struct {
			Axis string `json:"axis"`
		} `json:"axes"`
	}
	if err := json.Unmarshal(out.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(m.Axes) != 2 {
		t.Fatalf("marginals = %+v", m)
	}
}

// TestAdaptiveSweepCLI drives the -adaptive flags end to end and checks
// the JSON report shape.
func TestAdaptiveSweepCLI(t *testing.T) {
	var out bytes.Buffer
	args := []string{"sweep", "-base", "fame-clear", "-adaptive", "c",
		"-min", "2", "-max", "6", "-coarse", "3", "-runs", "3", "-seed", "5", "-format", "json"}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Axis         string `json:"axis"`
		UniformCells int    `json:"uniform_cells"`
		Points       []struct {
			Value int `json:"value"`
		} `json:"points"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if res.Axis != "c" || res.UniformCells != 5 || len(res.Points) == 0 {
		t.Fatalf("adaptive report = %+v", res)
	}
}

func TestAdaptiveAndDiffRejections(t *testing.T) {
	dir := t.TempDir()
	good := sweepJSONFixture(t, dir, "good.json", "7")
	notJSON := filepath.Join(dir, "mangled.json")
	if err := os.WriteFile(notJSON, []byte("not a sweep"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cases := [][]string{
		{"sweep", "-base", "fame-clear", "-adaptive", "c"},                                       // missing -min/-max
		{"sweep", "-base", "fame-clear", "-adaptive", "kappa", "-min", "2", "-max", "6"},         // unknown axis
		{"sweep", "-base", "fame-clear", "-adaptive", "c", "-min", "2", "-max", "6", "-n", "20"}, // grid axis with -adaptive
		{"sweep", "-adaptive", "c", "-min", "2", "-max", "6"},                                    // missing -base
		{"sweep", "-scenarios", fixturePath, "-sweep", "spectrum-grid", "-adaptive", "c", "-min", "2", "-max", "6"},
		{"diff"},                // missing operands
		{"diff", good},          // one operand
		{"diff", good, notJSON}, // unparseable report
		{"diff", "-format", "bogus", good, good},
		{"diff", "-threshold", "-0.1", good, good}, // negative tolerance is a typo, not a gate
		{"analyze"},                                // missing -in
		{"analyze", "-in", notJSON},                // unparseable report
		{"analyze", "-in", good, "-format", "bogus"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
