package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles the test binary as the fleetsim binary for the
// subprocess tests: "worker" is the argv -workers-exec self produces
// (os.Executable() of the in-process coordinator is this binary), and
// "__fleetsim" re-enters the full CLI so a test can SIGKILL a live
// coordinator process. Dispatching on argv rather than an environment
// variable keeps worker grandchildren from inheriting the marker.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && (os.Args[1] == "worker" || os.Args[1] == "__fleetsim") {
		args := os.Args[1:]
		if args[0] == "__fleetsim" {
			args = args[1:]
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err := run(ctx, args, os.Stdout)
		stop()
		if err != nil {
			if !errors.Is(err, errReported) {
				fmt.Fprintln(os.Stderr, "fleetsim:", err)
			}
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// distributedSweepArgs is the shared grid for the equivalence tests: a
// 2x2 grid, cheap enough to run seven times.
func distributedSweepArgs(extra ...string) []string {
	args := []string{"sweep", "-base", "fame-clear", "-n", "20,24", "-t", "0,1",
		"-runs", "3", "-seed", "9", "-format", "json"}
	return append(args, extra...)
}

// TestSweepDistributedMatchesInProcess is the CLI acceptance criterion
// for the fabric: -workers-exec self must emit byte-identical JSON to
// the in-process executor for 1, 2 and 4 subprocess workers, in both
// worker drive modes (GOMAXPROCS=1 flips the workers' radio engines to
// the pump scheduler; the coordinator process is unaffected because the
// Go runtime reads the variable at startup).
func TestSweepDistributedMatchesInProcess(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.json")
	if err := run(context.Background(), distributedSweepArgs("-out", ref), new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, gomaxprocs := range []string{"", "1"} {
		for _, workers := range []string{"1", "2", "4"} {
			name := "workers=" + workers
			if gomaxprocs != "" {
				name += ",pump"
			}
			t.Run(name, func(t *testing.T) {
				if gomaxprocs != "" {
					t.Setenv("GOMAXPROCS", gomaxprocs)
				}
				out := filepath.Join(dir, "out-"+strings.ReplaceAll(name, ",", "-")+".json")
				args := distributedSweepArgs("-workers-exec", "self", "-workers", workers, "-out", out)
				if err := run(context.Background(), args, new(bytes.Buffer)); err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(out)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("distributed sweep JSON differs from in-process JSON:\n--- distributed ---\n%s\n--- in-process ---\n%s", got, want)
				}
			})
		}
	}
}

// TestSweepKillResumeByteIdentical is the checkpoint acceptance
// criterion end to end: a coordinator process SIGKILLed mid-sweep is
// resumed from its journal, replays the completed cells without
// re-running them, and emits JSON byte-identical to an uninterrupted
// run.
func TestSweepKillResumeByteIdentical(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Reference: the same sweep uninterrupted, no fabric involved. Runs
	// is high enough that four serial cells outlive the kill window.
	grid := []string{"sweep", "-base", "fame-clear", "-n", "20,24", "-t", "0,1",
		"-runs", "60", "-seed", "9", "-format", "json"}
	ref := filepath.Join(dir, "ref.json")
	if err := run(context.Background(), append(grid, "-out", ref), new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator subprocess with a journal and one local session (cells
	// complete one at a time, so the journal grows in observable steps).
	ckpt := filepath.Join(dir, "sweep.ckpt")
	out := filepath.Join(dir, "out.json")
	args := append([]string{"__fleetsim"}, append(grid, "-workers", "1", "-checkpoint", ckpt, "-out", out)...)
	cmd := exec.Command(exe, args...)
	var victimLog bytes.Buffer
	cmd.Stderr = &victimLog
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// SIGKILL as soon as the journal holds a completed cell — mid-sweep
	// by construction, since three more cells are still to run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		blob, _ := os.ReadFile(ckpt)
		if bytes.Contains(blob, []byte(`"type":"cell"`)) {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("journal never received a cell record; coordinator stderr:\n%s", victimLog.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	if n := bytes.Count(mustRead(t, ckpt), []byte(`"type":"cell"`)); n >= 4 {
		t.Fatalf("sweep finished (%d cells journaled) before the kill; nothing left to resume", n)
	}

	// Resume in a fresh process, capturing the replay log line.
	var resumeLog bytes.Buffer
	resume := exec.Command(exe, append(args, "-resume")...)
	resume.Stderr = &resumeLog
	if err := resume.Run(); err != nil {
		t.Fatalf("resume failed: %v\n%s", err, resumeLog.String())
	}
	if !strings.Contains(resumeLog.String(), "replayed from checkpoint") {
		t.Fatalf("resume log does not mention the replay:\n%s", resumeLog.String())
	}
	got := mustRead(t, out)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed sweep JSON differs from uninterrupted JSON:\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
	// The repaired journal now covers the full grid and a second resume
	// is pure replay: no cells left, same bytes again.
	resumeLog.Reset()
	again := exec.Command(exe, append(args, "-resume")...)
	again.Stderr = &resumeLog
	if err := again.Run(); err != nil {
		t.Fatalf("second resume failed: %v\n%s", err, resumeLog.String())
	}
	if !strings.Contains(resumeLog.String(), "4 of 4 cells replayed") {
		t.Fatalf("second resume should replay every cell:\n%s", resumeLog.String())
	}
	if got := mustRead(t, out); !bytes.Equal(got, want) {
		t.Fatalf("pure-replay JSON differs from reference")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestSweepCatalogAdaptive resolves -sweep against the catalog's
// adaptive stanza (cartesian sweeps take precedence, adaptive searches
// are second) with an explicit -runs override.
func TestSweepCatalogAdaptive(t *testing.T) {
	var out bytes.Buffer
	args := []string{"sweep", "-scenarios", fixturePath, "-sweep", "spectrum-threshold",
		"-runs", "2", "-format", "json"}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	blob := out.String()
	for _, want := range []string{`"name": "spectrum-threshold"`, `"axis": "c"`, `"runs_per_cell": 2`} {
		if !strings.Contains(blob, want) {
			t.Fatalf("catalog adaptive report missing %s:\n%s", want, blob)
		}
	}
}

func TestFabricFlagRejections(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"sweep", "-base", "fame-clear", "-n", "20", "-resume"},                       // -resume without -checkpoint
		{"sweep", "-scenarios", fixturePath, "-sweep", "spectrum-grid", "-min", "2"},  // adaptive shape flag vs catalog sweep
		{"sweep", "-base", "fame-clear", "-n", "20", "-workers-exec", "/no/such/bin"}, // unspawnable workers fail the sweep
		{"worker", "stray-argument"},                                                  // leases come from the coordinator
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
