// Command benchjson runs the repo's headline benchmarks through
// testing.Benchmark and emits a machine-readable JSON report, so the
// performance trajectory can be committed alongside each PR (BENCH_*.json)
// and diffed across revisions without parsing `go test -bench` text.
//
// Usage:
//
//	benchjson                 # run every headline benchmark, JSON on stdout
//	benchjson -bench radio    # substring filter
//	benchjson -label after    # tag the report (e.g. before/after a rewrite)
//	benchjson diff old.json new.json   # compare two reports, exit 1 on regression
//
// The report includes ns/op, B/op, allocs/op and every custom metric the
// benchmarks publish via b.ReportMetric (node-rounds/op, runs/sec, ...).
//
// The diff subcommand aligns two reports by benchmark name and flags a
// regression when a benchmark slows down by more than -threshold
// (fractional, default 0.10), allocates more per op, or vanished from
// the new report; any regression makes the exit status non-zero, so a
// before/after pair gates in CI. Newly added benchmarks are listed but
// never count against the diff.
//
// The radio-engine workloads are shared with bench_test.go through
// internal/benchwork, so those cells always measure exactly what CI
// smoke-runs. The f-AME and fleet benchmarks MIRROR their bench_test.go
// counterparts instead: they exercise package securadio, which this
// command imports, so a shared workload package would be an import
// cycle — when editing those two, update BOTH copies.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"text/tabwriter"

	securadio "securadio"
	"securadio/internal/adversary"
	"securadio/internal/benchwork"
	"securadio/internal/core"
	"securadio/internal/graph"
	"securadio/internal/radio"
)

// Result is one benchmark's measurements.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	Label      string   `json:"label,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Comment    []string `json:"comment,omitempty"` // free-form prose kept in committed baselines
	Benchmarks []Result `json:"benchmarks"`
}

// benchmark is a named testing.B driver.
type benchmark struct {
	name string
	run  func(b *testing.B)
}

// benchFAMEBase mirrors BenchmarkFAMEBase's E=16/t=1 cell.
func benchFAMEBase(b *testing.B) {
	const span, pairsN = 12, 16
	rng := rand.New(rand.NewSource(7))
	pairs := graph.RandomPairs(span, pairsN, rng.Intn)
	values := make(map[graph.Edge]radio.Message, len(pairs))
	for _, e := range pairs {
		values[e] = fmt.Sprintf("m%v", e)
	}
	p := core.Params{N: 22, C: 2, T: 1, Regime: core.RegimeBase}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := &adversary.GreedyJammer{T: p.T, C: p.C}
		out, err := core.Exchange(p, pairs, values, adv, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if out.CoverSize > p.T {
			b.Fatalf("cover %d exceeds t", out.CoverSize)
		}
	}
}

// benchRunnerExchange mirrors BenchmarkRunnerExchange: the benchFAMEBase
// cell driven through the public context-aware Runner with a nil
// Observer, pinning the wrapper plus nil-observer fast path at
// approximately zero cost over the internal entrypoint.
func benchRunnerExchange(b *testing.B) {
	const span, pairsN = 12, 16
	rng := rand.New(rand.NewSource(7))
	pairs := graph.RandomPairs(span, pairsN, rng.Intn)
	payloads := make(map[securadio.Pair]securadio.Message, len(pairs))
	for _, e := range pairs {
		payloads[e] = fmt.Sprintf("m%v", e)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := securadio.Network{N: 22, C: 2, T: 1, Seed: int64(i)}
		r, err := securadio.NewRunner(net,
			securadio.WithRegime(securadio.RegimeBase),
			securadio.WithAdversary(securadio.NewWorstCaseJammer(net)))
		if err != nil {
			b.Fatal(err)
		}
		rep, rerr := r.Exchange(ctx, pairs, payloads)
		if rerr != nil {
			b.Fatal(rerr)
		}
		if rep.DisruptionCover > net.T {
			b.Fatalf("cover %d exceeds t", rep.DisruptionCover)
		}
	}
}

// benchFleetCampaign mirrors BenchmarkFleetCampaign: a 256-run fame-jam
// campaign per iteration, reporting runs/sec.
func benchFleetCampaign(b *testing.B) {
	sc, ok := securadio.LookupScenario("fame-jam")
	if !ok {
		b.Fatal("fame-jam scenario missing")
	}
	const runs = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err := securadio.RunCampaign(context.Background(), securadio.Campaign{
			Scenario: sc, Runs: runs, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if agg.Runs != runs || agg.Failures != 0 {
			b.Fatalf("runs=%d failures=%d", agg.Runs, agg.Failures)
		}
	}
	b.ReportMetric(float64(runs)*float64(b.N)/b.Elapsed().Seconds(), "runs/sec")
}

func registry() []benchmark {
	reg := []benchmark{
		{"BenchmarkRadioEngine", benchwork.RadioEngine},
		{"BenchmarkRadioEngine/steady-state", benchwork.RadioSteadyState},
		{"BenchmarkRadioEngine/steady-state-jam", benchwork.RadioSteadyStateJam},
		{"BenchmarkRadioEngine/steady-state-faulted", benchwork.RadioSteadyStateFaulted},
		{"BenchmarkRadioEngine/steady-state-jam-wide", benchwork.RadioSteadyStateJamWide},
		{"BenchmarkRadioEngine/steady-state-faulted-wide", benchwork.RadioSteadyStateFaultedWide},
		{"BenchmarkFAMEBase/E=16/t=1", benchFAMEBase},
		{"BenchmarkRunnerExchange/E=16/t=1", benchRunnerExchange},
		{"BenchmarkFleetCampaign", benchFleetCampaign},
	}
	for _, sz := range benchwork.LargeRegimeSizes {
		reg = append(reg, benchmark{
			fmt.Sprintf("BenchmarkLargeRegime/N=%d/C=%d", sz.N, sz.C),
			benchwork.LargeRegime(sz.N, sz.C),
		})
	}
	return reg
}

// loadReport reads a benchjson report back with the repo's usual JSON
// strictness: unknown fields and trailing data are rejected, so a sweep
// matrix or a hand-edited file fails loudly instead of diffing as zeros.
func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%s: trailing data after report", path)
	}
	return &rep, nil
}

// runDiff implements `benchjson diff old.json new.json`: a non-nil error
// means regression (or usage failure) and main exits non-zero.
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson diff", flag.ContinueOnError)
	fs.SetOutput(out)
	threshold := fs.Float64("threshold", 0.10,
		"tolerated fractional ns/op slowdown before a benchmark counts as regressed")
	allocSlack := fs.Int64("allocs", 0,
		"tolerated absolute allocs/op increase; single-run benchmarks amortize their "+
			"O(N) setup over an iteration count that varies with machine speed, so "+
			"cross-machine diffs need a small absolute slack (same-machine diffs keep 0)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *threshold < 0 {
		return fmt.Errorf("-threshold %v, want a non-negative fraction", *threshold)
	}
	if *allocSlack < 0 {
		return fmt.Errorf("-allocs %v, want a non-negative count", *allocSlack)
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchjson diff [-threshold 0.10] [-allocs 0] old.json new.json")
	}
	oldRep, err := loadReport(fs.Arg(0))
	if err != nil {
		return err
	}
	newRep, err := loadReport(fs.Arg(1))
	if err != nil {
		return err
	}

	byName := make(map[string]Result, len(newRep.Benchmarks))
	for _, r := range newRep.Benchmarks {
		byName[r.Name] = r
	}

	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\tallocs/op\tverdict")
	regressed := 0
	for _, o := range oldRep.Benchmarks {
		n, ok := byName[o.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t%.1f\t-\t-\t-\tVANISHED\n", o.Name, o.NsPerOp)
			regressed++
			continue
		}
		delete(byName, o.Name)
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		verdict := "ok"
		if delta > *threshold {
			verdict = "SLOWER"
		}
		if n.AllocsPerOp > o.AllocsPerOp+*allocSlack {
			if verdict == "ok" {
				verdict = "MORE ALLOCS"
			} else {
				verdict += "+ALLOCS"
			}
		}
		if verdict != "ok" {
			regressed++
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%+.1f%%\t%d -> %d\t%s\n",
			o.Name, o.NsPerOp, n.NsPerOp, delta*100, o.AllocsPerOp, n.AllocsPerOp, verdict)
	}
	// Whatever is left in byName is new in the second report — informational.
	for _, r := range newRep.Benchmarks {
		if _, isNew := byName[r.Name]; isNew {
			fmt.Fprintf(tw, "%s\t-\t%.1f\t-\t%d\tadded\n", r.Name, r.NsPerOp, r.AllocsPerOp)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if regressed > 0 {
		return fmt.Errorf("%d benchmark regression(s) beyond threshold %+.0f%%", regressed, *threshold*100)
	}
	return nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		if err := runDiff(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	var (
		filter = flag.String("bench", "", "substring filter on benchmark names")
		label  = flag.String("label", "", "free-form label recorded in the report")
		list   = flag.Bool("list", false, "list benchmark names and exit")
	)
	flag.Parse()

	reg := registry()
	if *list {
		for _, bm := range reg {
			fmt.Println(bm.name)
		}
		return
	}

	rep := Report{
		Label:      *label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, bm := range reg {
		if *filter != "" && !strings.Contains(bm.name, *filter) {
			continue
		}
		r := testing.Benchmark(bm.run)
		res := Result{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extra = r.Extra
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched %q\n", *filter)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
