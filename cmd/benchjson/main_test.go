package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport marshals a Report to a temp file and returns its path.
func writeReport(t *testing.T, rep Report) string {
	t.Helper()
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseReport() Report {
	return Report{
		GoVersion:  "go1.24",
		GOMAXPROCS: 8,
		Benchmarks: []Result{
			{Name: "BenchmarkA", Iterations: 100, NsPerOp: 1000, AllocsPerOp: 4},
			{Name: "BenchmarkB", Iterations: 100, NsPerOp: 2000, AllocsPerOp: 0},
		},
	}
}

// TestDiffIdenticalReportsPasses pins the CI self-diff: a report diffed
// against itself exits clean and marks every row ok.
func TestDiffIdenticalReportsPasses(t *testing.T) {
	path := writeReport(t, baseReport())
	var out bytes.Buffer
	if err := runDiff([]string{path, path}, &out); err != nil {
		t.Fatalf("self-diff: %v\n%s", err, out.String())
	}
	if strings.Count(out.String(), "ok") < 2 {
		t.Fatalf("self-diff output missing ok verdicts:\n%s", out.String())
	}
}

// TestDiffFlagsRegressions covers each regression class: a slowdown past
// the threshold, an allocation increase, and a vanished benchmark — and
// checks a within-threshold slowdown passes.
func TestDiffFlagsRegressions(t *testing.T) {
	old := writeReport(t, baseReport())

	slower := baseReport()
	slower.Benchmarks[0].NsPerOp = 1200 // +20% past the 10% default
	if err := runDiff([]string{old, writeReport(t, slower)}, new(bytes.Buffer)); err == nil {
		t.Fatal("20% slowdown passed the default 10% threshold")
	}
	if err := runDiff([]string{"-threshold", "0.25", old, writeReport(t, slower)}, new(bytes.Buffer)); err != nil {
		t.Fatalf("20%% slowdown failed a 25%% threshold: %v", err)
	}

	allocs := baseReport()
	allocs.Benchmarks[1].AllocsPerOp = 1
	var out bytes.Buffer
	if err := runDiff([]string{old, writeReport(t, allocs)}, &out); err == nil {
		t.Fatal("allocation increase passed")
	}
	if !strings.Contains(out.String(), "MORE ALLOCS") {
		t.Fatalf("output does not name the alloc regression:\n%s", out.String())
	}
	// An explicit -allocs slack absorbs a small absolute increase (amortized
	// setup noise on single-run benchmarks) but not one beyond the slack.
	if err := runDiff([]string{"-allocs", "1", old, writeReport(t, allocs)}, new(bytes.Buffer)); err != nil {
		t.Fatalf("+1 alloc failed under -allocs 1: %v", err)
	}
	allocs.Benchmarks[1].AllocsPerOp = 5
	if err := runDiff([]string{"-allocs", "1", old, writeReport(t, allocs)}, new(bytes.Buffer)); err == nil {
		t.Fatal("+5 allocs passed under -allocs 1")
	}

	vanished := baseReport()
	vanished.Benchmarks = vanished.Benchmarks[:1]
	out.Reset()
	if err := runDiff([]string{old, writeReport(t, vanished)}, &out); err == nil {
		t.Fatal("vanished benchmark passed")
	}
	if !strings.Contains(out.String(), "VANISHED") {
		t.Fatalf("output does not name the vanished benchmark:\n%s", out.String())
	}
}

// TestDiffAddedBenchmarksAreInformational pins that a benchmark present
// only in the new report is listed but never fails the diff.
func TestDiffAddedBenchmarksAreInformational(t *testing.T) {
	old := baseReport()
	grown := baseReport()
	grown.Benchmarks = append(grown.Benchmarks,
		Result{Name: "BenchmarkC", Iterations: 10, NsPerOp: 500})
	var out bytes.Buffer
	if err := runDiff([]string{writeReport(t, old), writeReport(t, grown)}, &out); err != nil {
		t.Fatalf("added benchmark counted as regression: %v", err)
	}
	if !strings.Contains(out.String(), "BenchmarkC") || !strings.Contains(out.String(), "added") {
		t.Fatalf("added benchmark missing from output:\n%s", out.String())
	}
}

// TestDiffUsageErrors pins argument validation: wrong arity, a negative
// threshold, an unreadable file and a non-report JSON document all fail.
func TestDiffUsageErrors(t *testing.T) {
	path := writeReport(t, baseReport())
	for _, args := range [][]string{
		{path},
		{path, path, path},
		{"-threshold", "-0.5", path, path},
		{"-allocs", "-3", path, path},
		{filepath.Join(t.TempDir(), "missing.json"), path},
	} {
		if err := runDiff(args, new(bytes.Buffer)); err == nil {
			t.Errorf("runDiff(%v) accepted", args)
		}
	}
	notReport := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(notReport, []byte(`{"cells":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDiff([]string{notReport, path}, new(bytes.Buffer)); err == nil {
		t.Error("non-report JSON accepted")
	}
}
