package securadio

import (
	"context"

	"securadio/internal/adversary"
	"securadio/internal/core"
	"securadio/internal/fault"
	"securadio/internal/graph"
	"securadio/internal/radio"
	"securadio/internal/transport/udp"
)

// Pair is an ordered (sender, receiver) pair of node IDs — one entry of
// the AME set E.
type Pair = graph.Edge

// Interferer is the adversary interface of the radio model: it may
// transmit on up to t channels per round (jamming or spoofing) and
// observes everything after each round. See NewJammer, NewSpoofer and
// friends for ready-made strategies.
type Interferer = radio.Adversary

// Message is an arbitrary payload carried by the radio simulation.
type Message = radio.Message

// Regime selects the f-AME channel-usage strategy (the rows of the
// paper's Figure 3).
type Regime = core.Regime

// Channel regimes (re-exported from the core protocol).
const (
	// RegimeAuto picks the fastest regime the spectrum supports.
	RegimeAuto = core.RegimeAuto
	// RegimeBase uses t+1 channels: O(|E| t^2 log n).
	RegimeBase = core.RegimeBase
	// Regime2T uses 2t channels: O(|E| log n).
	Regime2T = core.Regime2T
	// Regime2T2 uses C/t channels with parallel feedback: O(|E| log^2 n / t).
	Regime2T2 = core.Regime2T2
)

// Network describes the simulated radio network: n nodes, C channels, an
// adversary budget of t channels per round, a deterministic seed, and an
// optional interferer.
type Network struct {
	// N is the number of honest nodes.
	N int
	// C is the number of channels (C >= 2).
	C int
	// T is the adversary budget (0 <= T < C). The paper's headline case
	// is C = T+1, the minimum spectrum on which communication is possible.
	T int
	// Seed drives all randomness; runs are reproducible.
	Seed int64
	// Adversary is the interferer; nil means no interference.
	Adversary Interferer
}

// Options configure the exchange protocols.
type Options struct {
	// Regime selects the channel-usage strategy; zero value is RegimeAuto.
	Regime Regime

	// Direct disables surrogate relaying (the 2t-disruptable baseline /
	// Byzantine-tolerant variant of Section 8).
	Direct bool

	// Kappa scales all with-high-probability repetition counts;
	// non-positive selects the library default.
	Kappa float64

	// Cleanup enables the best-effort post-termination delivery extension
	// (Section 8, open question 3): after the greedy strategy terminates,
	// the nodes keep scheduling the surviving pairs (padded with fresh
	// recruitment items) for up to Cleanup extra moves. Against anything
	// short of a perfectly targeted jammer this usually empties the
	// disruption graph entirely.
	Cleanup int
}

func (o Options) fameParams(net Network) core.Params {
	mode := core.ModeSurrogate
	if o.Direct {
		mode = core.ModeDirect
	}
	return core.Params{
		N: net.N, C: net.C, T: net.T,
		Mode:    mode,
		Regime:  o.Regime,
		Kappa:   o.Kappa,
		Cleanup: o.Cleanup,
	}
}

// Transport abstracts the physical layer of the radio model: the engine
// keeps the round lock-step, validation and the adversary budget, and
// the transport resolves what each channel actually carried — in memory
// (the default) or over real sockets. Install one on a Runner with
// WithTransport; NewUDPTransport builds the socket backend. Determinism
// over a real medium is weaker than in memory: injected degradation is
// a pure function of (seed, round, channel, origin) and reproduces
// exactly, while datagrams the medium genuinely loses are environmental
// and surface in the reports' FaultDrops rather than silently skewing
// results.
type Transport = radio.Transport

// UDPConfig tunes the socket-backed transport: injected datagram-loss
// probability, jam windows, the receive-window cutoff, and the socket
// buffer size. The zero value is a lossless, jam-free medium.
type UDPConfig = udp.Config

// UDPJamWindow jams one channel for a half-open round interval (see
// UDPConfig.Jam).
type UDPJamWindow = udp.JamWindow

// NewUDPTransport returns the socket-backed Transport: every logical
// channel becomes one UDP socket on 127.0.0.1, each committed
// transmission one datagram. The returned error matches ErrBadParams
// semantics for malformed tuning (loss outside [0, 1], negative window,
// inverted jam interval).
func NewUDPTransport(cfg UDPConfig) (Transport, error) {
	t, err := udp.New(cfg)
	if err != nil {
		return nil, &ParamError{Op: "configure udp transport", Err: err}
	}
	return t, nil
}

// FaultProfile declares deterministic environmental fault injection:
// node-churn fractions (crash, crash-recover, late-join) and an optional
// Gilbert-Elliott burst-loss channel model. Install one on a Runner with
// WithFaults; fleet scenarios carry the same type. The zero profile
// injects nothing and selects the engine's exact fault-free code path.
type FaultProfile = fault.Profile

// LossModel is the two-state Gilbert-Elliott burst-loss channel model of
// a FaultProfile: per-round good/bad Markov transitions with distinct
// drop probabilities per state, optionally correlated across channels.
type LossModel = fault.LossModel

// NewLossModel returns a canonical bursty LossModel whose stationary
// loss rate is approximately rate (clamped to the model's feasible
// range): drops concentrate in bad bursts a few rounds long rather than
// spreading uniformly.
func NewLossModel(rate float64) LossModel { return *fault.DefaultLoss(rate) }

// NewFaultProfile derives a FaultProfile from two scalar intensities in
// [0, 1]: churn is split across crash, crash-recover and late-join
// fractions, and loss selects NewLossModel(loss). Either intensity may
// be zero to disable that fault family.
func NewFaultProfile(churn, loss float64) FaultProfile { return fault.FromFractions(churn, loss) }

// ExchangeReport summarizes an ExchangeMessages run.
type ExchangeReport struct {
	// Delivered maps each successful pair to the authentic payload its
	// destination output.
	Delivered map[Pair]Message

	// Failed lists the pairs that output fail. The minimum vertex cover
	// of the failed set is at most t (Definition 1, Theorem 6).
	Failed []Pair

	// DisruptionCover is that minimum vertex cover size.
	DisruptionCover int

	// Rounds is the number of radio rounds consumed.
	Rounds int

	// GameRounds is the number of starred-edge-removal moves simulated.
	GameRounds int

	// FaultDrops, NodesLost and DegradedRounds report the injected-fault
	// degradation when the Runner was built WithFaults (all zero
	// otherwise): deliveries destroyed by channel loss or churn silence,
	// nodes scheduled to crash for good, and rounds the fault layer
	// perturbed.
	FaultDrops     int
	NodesLost      int
	DegradedRounds int
}

// ExchangeMessages runs the f-AME protocol: each pair (v, w) attempts to
// deliver payloads[pair] from v to w, with authentication, sender
// awareness, and t-disruptability, despite the network's adversary.
//
// It is a convenience wrapper over Runner.Exchange with an uncancellable
// context; build a Runner directly for cancellation, streaming observers
// and shared configuration.
func ExchangeMessages(net Network, pairs []Pair, payloads map[Pair]Message, opts Options) (*ExchangeReport, error) {
	r, err := NewRunner(net, withOptions(opts))
	if err != nil {
		return nil, err
	}
	return r.Exchange(context.Background(), pairs, payloads)
}

// ExchangeMessagesCompact runs f-AME with the Section 5.6 message-size
// optimization: payloads travel through an epoch-gossip phase and only
// constant-size vector signatures ride the authenticated exchange.
// Payloads must be strings (the optimization hashes them).
//
// It is a convenience wrapper over Runner.ExchangeCompact with an
// uncancellable context.
func ExchangeMessagesCompact(net Network, pairs []Pair, payloads map[Pair]string, opts Options) (*ExchangeReport, error) {
	r, err := NewRunner(net, withOptions(opts))
	if err != nil {
		return nil, err
	}
	return r.ExchangeCompact(context.Background(), pairs, payloads)
}

// GroupKeyReport summarizes an EstablishGroupKey run.
type GroupKeyReport struct {
	// Keys holds each node's adopted group key (nil for the at-most-t
	// nodes that correctly identified their lack of knowledge).
	Keys []*[32]byte

	// Leader is the leader whose key won.
	Leader int

	// Agreed is the number of nodes holding the winning key (at least
	// n-t with high probability).
	Agreed int

	// Rounds is the number of radio rounds consumed (Theta(n t^3 log n)).
	Rounds int

	// FaultDrops, NodesLost and DegradedRounds report the injected-fault
	// degradation when the Runner was built WithFaults (all zero
	// otherwise); see ExchangeReport.
	FaultDrops     int
	NodesLost      int
	DegradedRounds int
}

// EstablishGroupKey runs the Section 6 protocol end to end and returns the
// per-node keys. No pre-shared secrets are assumed; secrecy rests on the
// computational Diffie-Hellman assumption exactly as in the paper.
//
// It is a convenience wrapper over Runner.GroupKey with an uncancellable
// context.
func EstablishGroupKey(net Network, opts Options) (*GroupKeyReport, error) {
	r, err := NewRunner(net, withOptions(opts))
	if err != nil {
		return nil, err
	}
	return r.GroupKey(context.Background())
}

// --- adversary constructors ---

// NewJammer returns a model-compliant adversary that jams t random
// channels each round.
func NewJammer(net Network, seed int64) Interferer {
	return adversary.NewRandomJammer(net.T, net.C, seed)
}

// NewSweepJammer returns a deterministic scanning jammer.
func NewSweepJammer(net Network) Interferer {
	return &adversary.SweepJammer{T: net.T, C: net.C}
}

// NewWorstCaseJammer returns the omniscient greedy jammer used for
// worst-case protocol stress. It inspects the honest nodes' current-round
// actions (strictly stronger than the paper's model) and always jams the
// most damaging t channels.
func NewWorstCaseJammer(net Network) Interferer {
	return &adversary.GreedyJammer{T: net.T, C: net.C}
}

// NewSpoofer returns an adversary that injects forged payloads produced by
// forge on idle channels with listeners.
func NewSpoofer(net Network, forge func(round int) Message) Interferer {
	return &adversary.IdleSpoofer{T: net.T, C: net.C, Forge: forge}
}

// NewReplayer returns an adversary that records overheard messages and
// replays them.
func NewReplayer(net Network, seed int64) Interferer {
	return adversary.NewReplaySpoofer(net.T, net.C, seed)
}

// NewBurstJammer returns a bursty on/off jammer with the default duty
// cycle: t random channels jammed for a fixed burst window, then an equal
// silence window, modeling duty-cycled interference. It delegates to the
// fleet registry's "burst" strategy, so single runs and campaigns agree on
// what "burst" means by construction.
func NewBurstJammer(net Network, seed int64) Interferer {
	return mustAdversary("burst", net, seed)
}

// NewHopJammer returns an adaptive channel-hopping jammer that tracks the
// historically busiest channels using only completed-round observations
// (fully model-compliant). It delegates to the fleet registry's "hop"
// strategy.
func NewHopJammer(net Network, seed int64) Interferer {
	return mustAdversary("hop", net, seed)
}

// NewComboAdversary returns the layered jam + replay composite: random
// jamming and replay spoofing share the t-transmission budget, with
// per-round priority rotation so both layers get airtime even at t=1. It
// delegates to the fleet registry's "combo" strategy, so single runs and
// campaigns agree on what "combo" means by construction.
func NewComboAdversary(net Network, seed int64) Interferer {
	return mustAdversary("combo", net, seed)
}

// mustAdversary builds a registry strategy known to exist.
func mustAdversary(name string, net Network, seed int64) Interferer {
	adv, err := NewAdversary(name, net, seed)
	if err != nil {
		panic(err) // unreachable: the name is registered
	}
	return adv
}
