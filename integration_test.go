package securadio

// Integration tests: full-stack executions across seeds, adversaries and
// regimes, checking the end-to-end guarantees the paper composes:
// authenticated exchange feeding key establishment feeding the long-lived
// channel.

import (
	"fmt"
	"math/rand"
	"testing"

	"securadio/internal/graph"
)

// randomWorkload builds a reproducible pair set over low node IDs.
func randomWorkload(n, k int, seed int64) ([]Pair, map[Pair]Message) {
	rng := rand.New(rand.NewSource(seed))
	span := 12
	if span > n {
		span = n
	}
	pairs := graph.RandomPairs(span, k, rng.Intn)
	payloads := make(map[Pair]Message, len(pairs))
	for _, p := range pairs {
		payloads[p] = fmt.Sprintf("payload-%v-%d", p, seed)
	}
	return pairs, payloads
}

// TestExchangeInvariantsAcrossSeedsAndAdversaries sweeps seeds and the
// adversary zoo and asserts, for every run, the three AME properties of
// Definition 1: authentication (payload integrity), sender awareness
// (validated inside Exchange), and t-disruptability.
func TestExchangeInvariantsAcrossSeedsAndAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	mkAdv := map[string]func(net Network, seed int64) Interferer{
		"none":   func(Network, int64) Interferer { return nil },
		"jam":    func(net Network, seed int64) Interferer { return NewJammer(net, seed) },
		"sweep":  func(net Network, _ int64) Interferer { return NewSweepJammer(net) },
		"worst":  func(net Network, _ int64) Interferer { return NewWorstCaseJammer(net) },
		"replay": func(net Network, seed int64) Interferer { return NewReplayer(net, seed) },
		"spoof": func(net Network, _ int64) Interferer {
			return NewSpoofer(net, func(round int) Message { return "FORGED" })
		},
	}
	for name, mk := range mkAdv {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 5; seed++ {
				net := Network{N: 20, C: 2, T: 1, Seed: seed}
				net.Adversary = mk(net, seed+100)
				pairs, payloads := randomWorkload(net.N, 10, seed)
				rep, err := ExchangeMessages(net, pairs, payloads, Options{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rep.DisruptionCover > net.T {
					t.Fatalf("seed %d: cover %d exceeds t", seed, rep.DisruptionCover)
				}
				for p, got := range rep.Delivered {
					if got != payloads[p] {
						t.Fatalf("seed %d: pair %v delivered %v", seed, p, got)
					}
				}
				if len(rep.Delivered)+len(rep.Failed) != len(pairs) {
					t.Fatalf("seed %d: outcome accounting broken", seed)
				}
			}
		})
	}
}

// TestRegimesAgreeOnGuarantees runs the same workload through all three
// channel regimes: outcomes may differ (different schedules) but every
// regime must uphold authenticity and the t bound — and the wider regimes
// must be faster per delivered message at equal t.
func TestRegimesAgreeOnGuarantees(t *testing.T) {
	const tt = 2
	pairs, payloads := randomWorkload(64, 14, 3)
	type outcome struct {
		rounds int
		regime Regime
	}
	var outs []outcome
	for _, rg := range []Regime{RegimeBase, Regime2T, Regime2T2} {
		var c int
		switch rg {
		case Regime2T:
			c = 2 * tt
		case Regime2T2:
			c = 2 * tt * tt
		default:
			c = tt + 1
		}
		net := Network{N: 64, C: c, T: tt, Seed: 9}
		net.Adversary = NewWorstCaseJammer(net)
		rep, err := ExchangeMessages(net, pairs, payloads, Options{Regime: rg})
		if err != nil {
			t.Fatalf("regime %v: %v", rg, err)
		}
		if rep.DisruptionCover > tt {
			t.Fatalf("regime %v: cover %d", rg, rep.DisruptionCover)
		}
		for p, got := range rep.Delivered {
			if got != payloads[p] {
				t.Fatalf("regime %v: pair %v corrupted", rg, p)
			}
		}
		outs = append(outs, outcome{rounds: rep.Rounds, regime: rg})
	}
	if outs[1].rounds >= outs[0].rounds {
		t.Fatalf("2t regime (%d rounds) not faster than base (%d rounds)",
			outs[1].rounds, outs[0].rounds)
	}
}

// TestFullStackUnderCombinedAttack drives the complete pipeline — group
// key bootstrap plus long-lived channel — against an adversary that both
// jams and replays, and checks the application-level outcome.
func TestFullStackUnderCombinedAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("full stack")
	}
	net := Network{N: 20, C: 2, T: 1, Seed: 77}
	net.Adversary = NewReplayer(net, 770)

	const emRounds = 4
	delivered := make([]int, net.N)
	app := func(s Session) {
		for em := 0; em < emRounds; em++ {
			var body []byte
			if s.ID() == 1 {
				body = []byte(fmt.Sprintf("beacon %d", em))
			}
			for _, d := range s.Step(body) {
				if d.Sender == 1 && string(d.Body) == fmt.Sprintf("beacon %d", em) {
					delivered[s.ID()]++
				}
			}
		}
	}
	rep, err := RunSecureGroup(net, Options{}, app)
	if err != nil {
		t.Fatalf("RunSecureGroup: %v", err)
	}
	if rep.KeyHolders < net.N-net.T {
		t.Fatalf("key holders %d", rep.KeyHolders)
	}
	full := 0
	for id, n := range delivered {
		if id == 1 {
			continue
		}
		if n == emRounds {
			full++
		}
	}
	if full < net.N-net.T-1 {
		t.Fatalf("only %d nodes heard every beacon", full)
	}
}

// TestCompactAndPlainExchangeAgree runs the same workload through plain
// f-AME and the Section 5.6 optimized variant; delivered values must
// agree wherever both succeed.
func TestCompactAndPlainExchangeAgree(t *testing.T) {
	pairs := []Pair{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 3, Dst: 4}, {Src: 5, Dst: 6}}
	strPayloads := make(map[Pair]string, len(pairs))
	anyPayloads := make(map[Pair]Message, len(pairs))
	for _, p := range pairs {
		s := fmt.Sprintf("v-%v", p)
		strPayloads[p] = s
		anyPayloads[p] = s
	}
	net := Network{N: 20, C: 2, T: 1, Seed: 4}
	plain, err := ExchangeMessages(net, pairs, anyPayloads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	compact, err := ExchangeMessagesCompact(net, pairs, strPayloads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		pv, pok := plain.Delivered[p]
		cv, cok := compact.Delivered[p]
		if pok && cok && pv != cv {
			t.Fatalf("pair %v: plain %v vs compact %v", p, pv, cv)
		}
	}
}

// TestDeterminismOfFullAPI: identical Network (including adversary seeds)
// must produce identical reports.
func TestDeterminismOfFullAPI(t *testing.T) {
	run := func() *ExchangeReport {
		net := Network{N: 20, C: 2, T: 1, Seed: 123}
		net.Adversary = NewJammer(net, 321)
		pairs, payloads := randomWorkload(net.N, 8, 5)
		rep, err := ExchangeMessages(net, pairs, payloads, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.GameRounds != b.GameRounds ||
		len(a.Delivered) != len(b.Delivered) || len(a.Failed) != len(b.Failed) {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestGroupKeyAcrossScales exercises Section 6 at several sizes.
func TestGroupKeyAcrossScales(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep")
	}
	for _, n := range []int{18, 30, 48} {
		net := Network{N: n, C: 2, T: 1, Seed: int64(n)}
		net.Adversary = NewJammer(net, int64(n)*7)
		rep, err := EstablishGroupKey(net, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rep.Agreed < n-1 {
			t.Fatalf("n=%d: agreed %d", n, rep.Agreed)
		}
	}
}
